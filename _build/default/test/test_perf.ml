(* Tests for the performance models: the WSE measurement harness, the
   hand-written-kernel model, the cluster baselines and the roofline —
   checking the shapes the paper's evaluation reports. *)

module B = Wsc_benchmarks.Benchmarks
module WP = Wsc_perf.Wse_perf
module Machine = Wsc_wse.Machine

let () = Wsc_core.Csl_stencil_interp.register ()
let check = Alcotest.(check bool)

let m_wse2 id size = WP.measure ~machine:Machine.wse2 ~size (B.find id)
let m_wse3 id size = WP.measure ~machine:Machine.wse3 ~size (B.find id)

(* ------------------------------------------------------------------ *)
(* figure 4 shape: WSE3 beats WSE2 everywhere                          *)
(* ------------------------------------------------------------------ *)

let test_fig4_shape () =
  List.iter
    (fun id ->
      let a = m_wse2 id B.Large and b = m_wse3 id B.Large in
      check (id ^ ": WSE3 > WSE2") true (b.gpts_per_s > a.gpts_per_s);
      (* the switching-logic advantage is bounded: between 5% and 2x *)
      let r = b.gpts_per_s /. a.gpts_per_s in
      check (id ^ ": ratio plausible") true (r > 1.05 && r < 2.0))
    [ "jacobian"; "diffusion"; "seismic"; "uvkbe" ]

let test_comm_heavier_kernels_gain_more () =
  (* jacobian (little compute per point) gains more from WSE3 switching
     than seismic (lots of compute per point) — the paper's explanation *)
  let gain id =
    (m_wse3 id B.Large).gpts_per_s /. (m_wse2 id B.Large).gpts_per_s
  in
  check "jacobian gains more than seismic" true (gain "jacobian" > gain "seismic")

(* ------------------------------------------------------------------ *)
(* figure 5 shape: generated code beats the hand-written kernel         *)
(* ------------------------------------------------------------------ *)

let test_fig5_shape () =
  List.iter
    (fun size ->
      let hand = Wsc_perf.Handwritten.hand_written_gpts ~size in
      let ours = (m_wse2 "seismic" size).gpts_per_s in
      check "ours > hand-written" true (ours > hand);
      (* "slightly better": within 15% *)
      check "advantage is modest" true (ours /. hand < 1.15))
    [ B.Small; B.Medium; B.Large ];
  (* single chunk on the generated version, as in the paper *)
  check "single chunk" true ((m_wse2 "seismic" B.Large).chunks = 1)

let test_seismic_peak_fraction () =
  (* Jacquelin et al. report 28.2% of peak for the hand-written WSE2
     kernel; ours should be in the published band (28.2% .. +8%) *)
  let m = m_wse2 "seismic" B.Large in
  check "peak fraction band" true (m.pct_of_peak > 25.0 && m.pct_of_peak < 36.0)

(* ------------------------------------------------------------------ *)
(* figure 6 shape: WSE3 >> clusters                                    *)
(* ------------------------------------------------------------------ *)

let test_fig6_shape () =
  let wse3 = (m_wse3 "acoustic" B.Large).gpts_per_s in
  let gpu = (Wsc_perf.Cluster.tursa_128_a100 ()).gpts_per_s in
  let cpu = (Wsc_perf.Cluster.archer2_128_nodes ()).gpts_per_s in
  let gpu_ratio = wse3 /. gpu and cpu_ratio = wse3 /. cpu in
  check "GPU cluster beats CPU cluster" true (gpu > cpu);
  check "~14x vs GPUs (9..19)" true (gpu_ratio > 9.0 && gpu_ratio < 19.0);
  check "~20x vs CPUs (14..28)" true (cpu_ratio > 14.0 && cpu_ratio < 28.0)

let test_cluster_models_memory_bound () =
  check "A100 memory bound" true (Wsc_perf.Cluster.tursa_128_a100 ()).memory_bound;
  check "CPU memory bound" true
    (Wsc_perf.Cluster.archer2_128_nodes ()).memory_bound

let test_cluster_strong_scaling () =
  (* more devices -> more throughput, but sublinearly (halo overhead) *)
  let t64 = Wsc_perf.Cluster.acoustic_throughput Wsc_perf.Cluster.a100 ~devices:64 ~n:1158 in
  let t128 = Wsc_perf.Cluster.acoustic_throughput Wsc_perf.Cluster.a100 ~devices:128 ~n:1158 in
  check "scales up" true (t128.gpts_per_s > t64.gpts_per_s);
  check "sublinear" true (t128.gpts_per_s < 2.0 *. t64.gpts_per_s)

(* ------------------------------------------------------------------ *)
(* figure 7 shape: roofline classification                             *)
(* ------------------------------------------------------------------ *)

let test_fig7_shape () =
  let nx, ny = B.xy_extents B.Large in
  let roof = Wsc_perf.Roofline.wse_roof Machine.wse3 ~pes:(nx * ny) in
  List.iter
    (fun (d : B.descr) ->
      let m = m_wse3 d.id B.Large in
      match Wsc_perf.Roofline.points_of_measurement roof m with
      | [ mem_pt; fab_pt ] ->
          check (d.id ^ " compute-bound from memory") true (mem_pt.bound = `Compute);
          let expect_fab = if d.id = "jacobian" then `Memory else `Compute in
          check (d.id ^ " fabric classification") true (fab_pt.bound = expect_fab)
      | _ -> Alcotest.fail "expected two points")
    B.all;
  (* the A100 acoustic point is memory bound, below its roof *)
  let a100 = Wsc_perf.Roofline.a100_point () in
  check "A100 memory bound" true (a100.bound = `Memory);
  check "A100 under its roof" true
    (a100.gflops
    <= Wsc_perf.Roofline.attainable Wsc_perf.Roofline.a100_roof
         ~bw_gbytes:Wsc_perf.Roofline.a100_roof.mem_bw_gbytes a100.ai)

let test_roofline_attainable () =
  let roof =
    { Wsc_perf.Roofline.machine_name = "m"; peak_gflops = 100.0;
      mem_bw_gbytes = 10.0; fabric_bw_gbytes = 2.0 }
  in
  check "bandwidth region" true
    (Wsc_perf.Roofline.attainable roof ~bw_gbytes:10.0 5.0 = 50.0);
  check "compute region" true
    (Wsc_perf.Roofline.attainable roof ~bw_gbytes:10.0 50.0 = 100.0)

(* ------------------------------------------------------------------ *)
(* measurement internals                                               *)
(* ------------------------------------------------------------------ *)

let test_throughput_scales_with_grid () =
  (* GPts/s is proportional to the PE count at fixed per-PE behaviour *)
  let small = m_wse3 "diffusion" B.Small in
  let large = m_wse3 "diffusion" B.Large in
  let expected = float_of_int (750 * 994) /. float_of_int (100 * 100) in
  let actual = large.gpts_per_s /. small.gpts_per_s in
  check "area scaling" true (Float.abs ((actual /. expected) -. 1.0) < 0.05)

let test_measured_flops_per_point () =
  (* the simulator-measured flops per point tracks the kernel's size *)
  let j = (m_wse3 "jacobian" B.Large).flops_per_pt in
  let s = (m_wse3 "seismic" B.Large).flops_per_pt in
  (* algorithmic counting: jacobian executes ~12 FLOPs/pt (4 promoted
     columns x 2 + 2 z fmacs x 2), seismic ~58 (25-point, 2nd order) *)
  check "jacobian ~10-14 flops/pt" true (j > 10.0 && j < 14.0);
  check "seismic ~52-62 flops/pt" true (s > 52.0 && s < 62.0)

let test_tflops_ordering () =
  (* per-point-heavier kernels score more TFLOP/s (paper section 7) *)
  let j = (m_wse2 "jacobian" B.Large).tflops in
  let s = (m_wse2 "seismic" B.Large).tflops in
  check "seismic > jacobian in TFLOP/s" true (s > j)

let test_handwritten_breakdown () =
  let bd, ours = Wsc_perf.Handwritten.compare_seismic ~size:B.Large in
  check "hand-written slower" true (bd.hw_cycles_per_iter > ours.cycles_per_iter);
  check "advantage positive" true (bd.advantage_pct > 0.0);
  check "advantage below 15%" true (bd.advantage_pct < 15.0)

let () =
  Alcotest.run "perf"
    [
      ( "fig4",
        [
          Alcotest.test_case "WSE3 > WSE2" `Slow test_fig4_shape;
          Alcotest.test_case "comm-heavy gains more" `Slow
            test_comm_heavier_kernels_gain_more;
        ] );
      ( "fig5",
        [
          Alcotest.test_case "beats hand-written" `Slow test_fig5_shape;
          Alcotest.test_case "peak fraction" `Quick test_seismic_peak_fraction;
          Alcotest.test_case "breakdown" `Quick test_handwritten_breakdown;
        ] );
      ( "fig6",
        [
          Alcotest.test_case "cluster ratios" `Quick test_fig6_shape;
          Alcotest.test_case "memory bound" `Quick test_cluster_models_memory_bound;
          Alcotest.test_case "strong scaling" `Quick test_cluster_strong_scaling;
        ] );
      ( "fig7",
        [
          Alcotest.test_case "classification" `Slow test_fig7_shape;
          Alcotest.test_case "attainable" `Quick test_roofline_attainable;
        ] );
      ( "measurement",
        [
          Alcotest.test_case "area scaling" `Quick test_throughput_scales_with_grid;
          Alcotest.test_case "flops per point" `Quick test_measured_flops_per_point;
          Alcotest.test_case "tflops ordering" `Quick test_tflops_ordering;
        ] );
    ]
