(* Tests for the standard dialects and the sequential reference
   interpreter: op constructors, dialect verifiers, grid machinery,
   arithmetic/control-flow evaluation and stencil-apply semantics. *)

open Wsc_ir.Ir
module B = Wsc_ir.Builder
module I = Wsc_dialects.Interp
module Arith = Wsc_dialects.Arith
module Scf = Wsc_dialects.Scf
module Func = Wsc_dialects.Func
module Builtin = Wsc_dialects.Builtin
module Stencil = Wsc_dialects.Stencil
module Dmp = Wsc_dialects.Dmp
module Varith = Wsc_dialects.Varith

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* interpreter: scalars and control flow                               *)
(* ------------------------------------------------------------------ *)

let run_scalar_fn body =
  let f =
    Func.func ~name:"main" ~args:[] ~results:[ F32 ] (fun b _ ->
        let r = body b in
        B.insert0 b (Func.return_ [ r ]))
  in
  let m = Builtin.module_op [ f ] in
  Wsc_ir.Verifier.verify m;
  match I.run_func m ~name:"main" [] with
  | [ I.Rfloat f ] -> f
  | [ I.Rint i ] -> float_of_int i
  | _ -> Alcotest.fail "expected one scalar"

let test_arith_eval () =
  let r =
    run_scalar_fn (fun b ->
        let x = B.insert b (Arith.constant_f 3.0) in
        let y = B.insert b (Arith.constant_f 4.0) in
        let s = B.insert b (Arith.addf x y) in
        let d = B.insert b (Arith.subf s y) in
        let p = B.insert b (Arith.mulf d y) in
        B.insert b (Arith.divf p y))
  in
  check_float "(((3+4)-4)*4)/4" 3.0 r

let test_varith_eval () =
  let r =
    run_scalar_fn (fun b ->
        let c v = B.insert b (Arith.constant_f v) in
        let s = B.insert b (Varith.add [ c 1.0; c 2.0; c 3.0; c 4.0 ]) in
        let m = B.insert b (Varith.mul [ s; c 0.5 ]) in
        m)
  in
  check_float "varith" 5.0 r

let test_scf_for_eval () =
  (* sum 0..9 via float iteration value *)
  let f =
    Func.func ~name:"main" ~args:[] ~results:[ F32 ] (fun b _ ->
        let lb = B.insert b (Arith.constant_index 0) in
        let ub = B.insert b (Arith.constant_index 10) in
        let st = B.insert b (Arith.constant_index 1) in
        let init = B.insert b (Arith.constant_f 0.0) in
        let one = B.insert b (Arith.constant_f 1.0) in
        let loop =
          Scf.for_ ~lb ~ub ~step:st ~iter_args:[ init ] (fun bb _iv args ->
              let acc = List.hd args in
              let acc' = B.insert bb (Arith.addf acc one) in
              B.insert0 bb (Scf.yield [ acc' ]))
        in
        let r = B.insert b loop in
        B.insert0 b (Func.return_ [ r ]))
  in
  let m = Builtin.module_op [ f ] in
  match I.run_func m ~name:"main" [] with
  | [ I.Rfloat r ] -> check_float "loop ran 10x" 10.0 r
  | _ -> Alcotest.fail "bad result"

let test_scf_if_eval () =
  let r =
    run_scalar_fn (fun b ->
        let x = B.insert b (Arith.constant_i 3) in
        let y = B.insert b (Arith.constant_i 5) in
        let c = B.insert b (Arith.cmpi ~pred:"slt" x y) in
        B.insert b
          (Scf.if_ ~cond:c ~results:[ F32 ]
             (fun tb -> B.insert0 tb (Scf.yield [ B.insert tb (Arith.constant_f 1.0) ]))
             (fun eb -> B.insert0 eb (Scf.yield [ B.insert eb (Arith.constant_f 2.0) ]))))
  in
  check_float "then branch" 1.0 r

let test_func_call () =
  let callee =
    Func.func ~name:"double" ~args:[ F32 ] ~results:[ F32 ] (fun b args ->
        let two = B.insert b (Arith.constant_f 2.0) in
        let r = B.insert b (Arith.mulf two (List.hd args)) in
        B.insert0 b (Func.return_ [ r ]))
  in
  let main =
    Func.func ~name:"main" ~args:[] ~results:[ F32 ] (fun b _ ->
        let x = B.insert b (Arith.constant_f 21.0) in
        let r = B.insert b (Func.call ~callee:"double" [ x ] ~results:[ F32 ]) in
        B.insert0 b (Func.return_ [ r ]))
  in
  let m = Builtin.module_op [ callee; main ] in
  match I.run_func m ~name:"main" [] with
  | [ I.Rfloat r ] -> check_float "call" 42.0 r
  | _ -> Alcotest.fail "bad result"

(* ------------------------------------------------------------------ *)
(* grids                                                               *)
(* ------------------------------------------------------------------ *)

let test_grid_indexing () =
  let g = I.make_grid [ (-1, 3); (-1, 3) ] F32 in
  I.grid_set_scalar g [ -1; -1 ] 1.5;
  I.grid_set_scalar g [ 2; 2 ] 2.5;
  check_float "corner lo" 1.5 (I.grid_get_scalar g [ -1; -1 ]);
  check_float "corner hi" 2.5 (I.grid_get_scalar g [ 2; 2 ]);
  check "out of bounds" true
    (match I.grid_get_scalar g [ 3; 0 ] with
    | exception I.Interp_error _ -> true
    | _ -> false)

let test_grid_tensor_elems () =
  let g = I.make_grid [ (0, 2); (0, 2) ] (Tensor ([ 3 ], F32)) in
  I.grid_set g [ 1; 0 ] (I.Rtensor [| 1.0; 2.0; 3.0 |]);
  (match I.grid_get g [ 1; 0 ] with
  | I.Rtensor a ->
      check_float "col 0" 1.0 a.(0);
      check_float "col 2" 3.0 a.(2)
  | _ -> Alcotest.fail "expected tensor");
  check "wrong size rejected" true
    (match I.grid_set g [ 0; 0 ] (I.Rtensor [| 1.0 |]) with
    | exception I.Interp_error _ -> true
    | _ -> false)

let test_retensorize_layout () =
  let g3 = I.make_grid [ (0, 2); (0, 2); (-1, 2) ] F32 in
  I.init_grid g3;
  let g2 = I.retensorize_grid g3 in
  check_int "same storage size" (Array.length g3.I.gdata) (Array.length g2.I.gdata);
  (* column (1,1) of the 2-D view equals the z-run of the 3-D view *)
  match I.grid_get g2 [ 1; 1 ] with
  | I.Rtensor col ->
      List.iteri
        (fun k z ->
          check_float
            (Printf.sprintf "col elem %d" k)
            (I.grid_get_scalar g3 [ 1; 1; z ])
            col.(k))
        [ -1; 0; 1 ]
  | _ -> Alcotest.fail "expected tensor"

let test_iter_points_order () =
  let pts = ref [] in
  I.iter_points [ (0, 2); (0, 2) ] (fun p -> pts := p :: !pts);
  check "row major" true
    (List.rev !pts = [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ])

(* ------------------------------------------------------------------ *)
(* stencil apply semantics                                             *)
(* ------------------------------------------------------------------ *)

(* 1-D-in-x average on a 4x1x1-ish grid (3-D types as the dialect wants) *)
let shift_module () =
  let gt = Temp ([ (-1, 4); (0, 1); (0, 1) ], F32) in
  let ft = Field ([ (-1, 4); (0, 1); (0, 1) ], F32) in
  let f =
    Func.func ~name:"main" ~args:[ ft ] ~results:[] (fun b args ->
        let t = B.insert b (Stencil.load (List.hd args)) in
        let ap =
          Stencil.apply
            ~compute_bounds:[ (0, 4); (0, 1); (0, 1) ]
            ~inputs:[ t ] ~result_type:gt
            (fun bb bargs ->
              let v =
                B.insert bb (Stencil.access (List.hd bargs) ~offset:[ -1; 0; 0 ])
              in
              B.insert0 bb (Stencil.return_ [ v ]))
        in
        let r = B.insert b ap in
        B.insert0 b (Stencil.store r (List.hd args));
        B.insert0 b (Func.return_ []))
  in
  (Builtin.module_op [ f ], ft)

let test_apply_shift_and_dirichlet () =
  let m, ft = shift_module () in
  let g = I.grid_of_typ ft in
  List.iteri (fun i x -> I.grid_set_scalar g [ x; 0; 0 ] (float_of_int i)) [ -1; 0; 1; 2; 3 ];
  ignore (I.run_func m ~name:"main" [ I.Rgrid g ]);
  (* interior shifted right by one *)
  check_float "x=0 gets old x=-1" 0.0 (I.grid_get_scalar g [ 0; 0; 0 ]);
  check_float "x=3 gets old x=2" 3.0 (I.grid_get_scalar g [ 3; 0; 0 ]);
  (* the halo cell keeps its Dirichlet value *)
  check_float "halo unchanged" 0.0 (I.grid_get_scalar g [ -1; 0; 0 ])

let test_apply_verifier () =
  (* block args must mirror operands *)
  let gt = Temp ([ (0, 2); (0, 2); (0, 2) ], F32) in
  let t = new_value gt in
  let bad =
    create_op "stencil.apply" ~operands:[ t ] ~results:[ gt ]
      ~regions:[ new_region [ new_block ~args:[] [] ] ]
  in
  match Wsc_ir.Verifier.verify_registered (Builtin.module_op []) with
  | () -> (
      match Wsc_ir.Verifier.verify (Builtin.module_op [ bad ]) with
      | exception Wsc_ir.Verifier.Verification_error _ -> ()
      | () -> Alcotest.fail "expected apply verifier error")

let test_access_rank_check () =
  let t = new_value (Temp ([ (0, 2); (0, 2) ], F32)) in
  let a = Stencil.access t ~offset:[ 1; 0; 0 ] in
  let m = Builtin.module_op [ a ] in
  (* operand of a is free, so check only the registered verifier *)
  match Wsc_ir.Verifier.verify_registered m with
  | exception Wsc_ir.Verifier.Verification_error _ -> ()
  | () -> Alcotest.fail "expected rank error"

(* ------------------------------------------------------------------ *)
(* dmp swaps                                                           *)
(* ------------------------------------------------------------------ *)

let test_dmp_roundtrip () =
  let swaps =
    [
      { Dmp.dir = Dmp.East; depth = 2; z_lo = 0; z_hi = 10 };
      { Dmp.dir = Dmp.South; depth = 1; z_lo = 1; z_hi = 9 };
    ]
  in
  let a = Dmp.swap_attr swaps in
  check "swap attr roundtrip" true (Dmp.swaps_of_attr a = swaps);
  let t = new_value (Temp ([ (0, 4); (0, 4) ], Tensor ([ 10 ], F32))) in
  let sw = Dmp.swap t ~topology:(4, 4) ~swaps in
  check "topology" true (Dmp.topology sw = (4, 4));
  check_int "volume" ((2 * 10) + 8) (Dmp.exchange_volume sw)

let test_direction_names () =
  List.iter
    (fun d ->
      check "name roundtrip" true
        (Dmp.direction_of_string (Dmp.direction_to_string d) = d))
    Dmp.all_directions

(* ------------------------------------------------------------------ *)
(* linalg / memref / tensor constructors                               *)
(* ------------------------------------------------------------------ *)

let test_linalg_dps () =
  let m1 = new_value (Memref ([ 8 ], F32)) in
  let m2 = new_value (Memref ([ 8 ], F32)) in
  let add = Wsc_dialects.Linalg_d.add ~a:m1 ~b:m2 ~out:m2 in
  check "no results" true (add.results = []);
  check "dst is last" true ((Wsc_dialects.Linalg_d.dst add).vid = m2.vid);
  let fmac = Wsc_dialects.Linalg_d.fmac ~a:m1 ~b:m2 ~out:m1 ~scalar:0.5 in
  check_float "scalar attr" 0.5 (float_attr_exn fmac "scalar")

let test_tensor_slice_bounds () =
  let t = new_value (Tensor ([ 8 ], F32)) in
  let ok = Wsc_dialects.Tensor_d.extract_slice t ~offset:2 ~size:6 in
  Wsc_ir.Verifier.verify_registered (Builtin.module_op [])
  |> fun () ->
  ignore ok;
  let bad = Wsc_dialects.Tensor_d.extract_slice t ~offset:4 ~size:6 in
  match Wsc_ir.Verifier.verify_registered (Builtin.module_op [ bad ]) with
  | exception Wsc_ir.Verifier.Verification_error _ -> ()
  | () -> Alcotest.fail "expected slice bounds error"

(* ------------------------------------------------------------------ *)
(* property tests                                                      *)
(* ------------------------------------------------------------------ *)

let prop_grid_roundtrip =
  QCheck.Test.make ~name:"grid set/get roundtrip" ~count:200
    QCheck.(
      triple (int_range 0 3) (int_range 0 3) (float_range (-100.0) 100.0))
    (fun (x, y, v) ->
      let g = I.make_grid [ (-1, 4); (-1, 4) ] F32 in
      I.grid_set_scalar g [ x; y ] v;
      I.grid_get_scalar g [ x; y ] = v)

let prop_flat_index_bijective =
  QCheck.Test.make ~name:"flat_index is a bijection" ~count:50 QCheck.unit
    (fun () ->
      let g = I.make_grid [ (-1, 3); (0, 2); (-2, 1) ] F32 in
      let seen = Hashtbl.create 64 in
      let ok = ref true in
      I.iter_points g.I.gbounds (fun p ->
          let ix = I.flat_index g p in
          if Hashtbl.mem seen ix then ok := false;
          Hashtbl.replace seen ix ());
      !ok && Hashtbl.length seen = Array.length g.I.gdata)

let prop_elementwise_matches_scalar =
  QCheck.Test.make ~name:"tensor arith matches scalar arith" ~count:200
    QCheck.(pair (list_of_size (Gen.return 5) (float_range (-10.) 10.))
              (list_of_size (Gen.return 5) (float_range 1.0 10.)))
    (fun (xs, ys) ->
      let a = I.Rtensor (Array.of_list xs) and b = I.Rtensor (Array.of_list ys) in
      match I.elementwise2 ( +. ) a b with
      | I.Rtensor r ->
          List.for_all2 (fun x (y, i) -> r.(i) = x +. y)
            xs
            (List.mapi (fun i y -> (y, i)) ys)
      | _ -> false)

let () =
  Alcotest.run "dialects"
    [
      ( "interp-scalar",
        [
          Alcotest.test_case "arith" `Quick test_arith_eval;
          Alcotest.test_case "varith" `Quick test_varith_eval;
          Alcotest.test_case "scf.for" `Quick test_scf_for_eval;
          Alcotest.test_case "scf.if" `Quick test_scf_if_eval;
          Alcotest.test_case "func.call" `Quick test_func_call;
        ] );
      ( "grids",
        [
          Alcotest.test_case "indexing" `Quick test_grid_indexing;
          Alcotest.test_case "tensor elements" `Quick test_grid_tensor_elems;
          Alcotest.test_case "retensorize layout" `Quick test_retensorize_layout;
          Alcotest.test_case "iter order" `Quick test_iter_points_order;
        ] );
      ( "stencil",
        [
          Alcotest.test_case "apply shift + dirichlet" `Quick
            test_apply_shift_and_dirichlet;
          Alcotest.test_case "apply verifier" `Quick test_apply_verifier;
          Alcotest.test_case "access rank" `Quick test_access_rank_check;
        ] );
      ( "dmp",
        [
          Alcotest.test_case "swap roundtrip" `Quick test_dmp_roundtrip;
          Alcotest.test_case "direction names" `Quick test_direction_names;
        ] );
      ( "dps",
        [
          Alcotest.test_case "linalg" `Quick test_linalg_dps;
          Alcotest.test_case "tensor slice bounds" `Quick test_tensor_slice_bounds;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_grid_roundtrip; prop_flat_index_bijective; prop_elementwise_matches_scalar ]
      );
    ]
