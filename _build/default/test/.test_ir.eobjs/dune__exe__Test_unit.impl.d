test/test_unit.ml: Alcotest Array List String Wsc_benchmarks Wsc_core Wsc_dialects Wsc_frontends Wsc_ir Wsc_wse
