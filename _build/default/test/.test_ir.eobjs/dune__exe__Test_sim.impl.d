test/test_sim.ml: Alcotest Array Float List Printf Wsc_benchmarks Wsc_core Wsc_dialects Wsc_frontends Wsc_wse
