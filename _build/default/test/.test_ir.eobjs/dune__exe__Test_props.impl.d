test/test_props.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest String Wsc_core Wsc_dialects Wsc_frontends Wsc_ir Wsc_wse
