test/test_frontends.ml: Alcotest Float List Printf QCheck QCheck_alcotest Wsc_benchmarks Wsc_dialects Wsc_frontends Wsc_ir
