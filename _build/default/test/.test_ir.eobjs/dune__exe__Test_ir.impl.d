test/test_ir.ml: Alcotest List Option Printf Subst Wsc_benchmarks Wsc_dialects Wsc_frontends Wsc_ir
