test/test_csl.ml: Alcotest List Option String Wsc_benchmarks Wsc_core Wsc_frontends Wsc_ir
