test/test_unit.mli:
