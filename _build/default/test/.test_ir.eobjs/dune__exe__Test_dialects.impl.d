test/test_dialects.ml: Alcotest Array Gen Hashtbl List Printf QCheck QCheck_alcotest Wsc_dialects Wsc_ir
