test/test_passes.ml: Alcotest Float List Option Printf Wsc_benchmarks Wsc_core Wsc_dialects Wsc_frontends Wsc_ir
