test/test_perf.ml: Alcotest Float List Wsc_benchmarks Wsc_core Wsc_perf Wsc_wse
