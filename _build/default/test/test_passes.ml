(* Tests for the transformation pipeline, group by group, using the
   sequential interpreter as the semantic oracle at every stage. *)

open Wsc_ir.Ir
module P = Wsc_frontends.Stencil_program
module B = Wsc_benchmarks.Benchmarks
module I = Wsc_dialects.Interp
module Stencil = Wsc_dialects.Stencil
module Dmp = Wsc_dialects.Dmp
module Core = Wsc_core
module Stats = Wsc_ir.Stats

let () = Core.Csl_stencil_interp.register ()
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* run the transformed module on the same initial data as the reference *)
let run_transformed (p : P.t) (passes : Wsc_ir.Pass.t list) :
    op * I.grid list * I.grid list =
  let ref_grids = P.run_reference p in
  let m = Wsc_ir.Pass.run_pipeline passes (P.compile p) in
  let ft = P.field_type p in
  let grids =
    List.map
      (fun _ ->
        let g3 = I.grid_of_typ ft in
        I.init_grid g3;
        I.retensorize_grid g3)
      p.P.state
  in
  ignore (I.run_func m ~name:"main" (List.map (fun g -> I.Rgrid g) grids));
  (m, ref_grids, grids)

let assert_matches name ref_grids grids =
  let maxd = List.fold_left Float.max 0.0 (List.map2 I.max_abs_diff ref_grids grids) in
  if maxd > 1e-5 then Alcotest.failf "%s: max diff %g" name maxd

let group1 = [ Core.Stencil_inlining.pass; Core.Distribute.distribute_pass;
               Core.Distribute.tensorize_pass ]
let group2 extra =
  group1
  @ [ Core.Varith_passes.to_varith_pass; Core.Varith_passes.fuse_repeated_pass ]
  @ extra

(* ------------------------------------------------------------------ *)
(* stencil inlining                                                    *)
(* ------------------------------------------------------------------ *)

let test_inlining_fuses_uvkbe () =
  let p = (B.find "uvkbe").make B.Tiny in
  let m = Wsc_ir.Pass.run_pipeline [ Core.Stencil_inlining.pass ] (P.compile p) in
  check_int "single fused apply" 1 (Stats.count m "stencil.apply")

let test_inlining_semantics_scalar () =
  let p = (B.find "uvkbe").make B.Tiny in
  let ref_grids = P.run_reference p in
  let m = Wsc_ir.Pass.run_pipeline [ Core.Stencil_inlining.pass ] (P.compile p) in
  let grids =
    List.map
      (fun _ ->
        let g = I.grid_of_typ (P.field_type p) in
        I.init_grid g;
        g)
      p.P.state
  in
  ignore (I.run_func m ~name:"main" (List.map (fun g -> I.Rgrid g) grids));
  assert_matches "inlining" ref_grids grids

let test_inlining_passthrough () =
  (* producer with a second consumer: its value must be passed through *)
  let expr_a = P.Add (P.Access ("u", [ 1; 0; 0 ]), P.Access ("u", [ -1; 0; 0 ])) in
  let expr_b = P.Mul (P.Const 0.5, P.Access ("a", [ 0; 0; 0 ])) in
  let p =
    {
      P.pname = "pass";
      frontend = "test";
      extents = (4, 4, 4);
      halo = 1;
      state = [ "u" ];
      kernels =
        [
          { P.kname = "ka"; output = "a"; expr = expr_a };
          { P.kname = "kb"; output = "b"; expr = expr_b };
        ];
      (* both a and b survive the step: a is used by kb AND yielded *)
      next_state = [ "a" ];
      iterations = 1;
      use_loop = true;
      dsl_loc = 0;
    }
  in
  let m = Wsc_ir.Pass.run_pipeline [ Core.Stencil_inlining.pass ] (P.compile p) in
  let applies = find_ops_by_name "stencil.apply" m in
  check_int "one fused apply" 1 (List.length applies);
  check_int "passthrough adds a result" 2 (List.length (List.hd applies).results);
  (* and semantics hold *)
  let ref_grids = P.run_reference p in
  let grids =
    List.map
      (fun _ ->
        let g = I.grid_of_typ (P.field_type p) in
        I.init_grid g;
        g)
      p.P.state
  in
  ignore (I.run_func m ~name:"main" (List.map (fun g -> I.Rgrid g) grids));
  assert_matches "passthrough" ref_grids grids

(* ------------------------------------------------------------------ *)
(* canonicalize                                                        *)
(* ------------------------------------------------------------------ *)

let canon_program expr =
  {
    P.pname = "canon";
    frontend = "test";
    extents = (3, 3, 4);
    halo = 1;
    state = [ "u" ];
    kernels = [ { P.kname = "k"; output = "w"; expr } ];
    next_state = [ "w" ];
    iterations = 1;
    use_loop = true;
    dsl_loc = 0;
  }

let test_canonicalize_folds_constants () =
  (* (2*3)*u + 0  ->  6*u with a single constant *)
  let expr =
    P.Add
      ( P.Mul (P.Mul (P.Const 2.0, P.Const 3.0), P.Access ("u", [ 1; 0; 0 ])),
        P.Const 0.0 )
  in
  let p = canon_program expr in
  let m = Wsc_ir.Pass.run_pipeline [ Core.Canonicalize.pass ] (P.compile p) in
  (* a frontend-level fold already reduces 2*3; canonicalize removes +0
     and leaves exactly one multiplication and one constant in the body *)
  let apply = Option.get (find_op_by_name "stencil.apply" m) in
  check_int "one mulf" 1 (Stats.count apply "arith.mulf");
  check_int "no addf" 0 (Stats.count apply "arith.addf");
  (* and semantics hold *)
  let _, r, g =
    run_transformed p ([ Core.Canonicalize.pass ] @ group1)
  in
  assert_matches "canonicalize" r g

let test_canonicalize_cse_after_inlining () =
  (* inlining duplicates the producer per access; canonicalize merges the
     duplicated accesses and constants *)
  let p = (B.find "uvkbe").make B.Tiny in
  let before =
    Wsc_ir.Pass.run_pipeline [ Core.Stencil_inlining.pass ] (P.compile p)
  in
  let n_before = Stats.count before "stencil.access" in
  let after =
    Wsc_ir.Pass.run_pipeline
      [ Core.Stencil_inlining.pass; Core.Canonicalize.pass ]
      (P.compile p)
  in
  let n_after = Stats.count after "stencil.access" in
  check "CSE removed duplicate accesses" true (n_after <= n_before);
  check "constants deduplicated" true
    (Stats.count after "arith.constant" <= Stats.count before "arith.constant")

let test_canonicalize_identities () =
  List.iter
    (fun (name, expr) ->
      let p = canon_program expr in
      let _, r, g = run_transformed p ([ Core.Canonicalize.pass ] @ group1) in
      assert_matches name r g)
    [
      ("x*1", P.Mul (P.Access ("u", [ 1; 0; 0 ]), P.Const 1.0));
      ("x*0 + y", P.Add (P.Mul (P.Access ("u", [ 1; 0; 0 ]), P.Const 0.0),
                         P.Access ("u", [ -1; 0; 0 ])));
      ("x-0", P.Sub (P.Access ("u", [ 0; 1; 0 ]), P.Const 0.0));
      ("x/1", P.Div (P.Access ("u", [ 0; -1; 0 ]), P.Const 1.0));
    ]

(* ------------------------------------------------------------------ *)
(* distribute-stencil                                                  *)
(* ------------------------------------------------------------------ *)

let test_distribute_swaps () =
  let p = (B.find "seismic").make B.Tiny in
  let m =
    Wsc_ir.Pass.run_pipeline
      [ Core.Stencil_inlining.pass; Core.Distribute.distribute_pass ]
      (P.compile p)
  in
  let swaps = find_ops_by_name "dmp.swap" m in
  check_int "one swap (u communicated)" 1 (List.length swaps);
  let sw = List.hd swaps in
  let descs = Dmp.swaps sw in
  check_int "four directions" 4 (List.length descs);
  List.iter (fun (s : Dmp.swap_desc) -> check_int "depth = radius" 4 s.depth) descs;
  (* needed-columns-only: remote accesses have z offset 0, so the z range
     is exactly the interior *)
  let _, _, nz = p.P.extents in
  List.iter
    (fun (s : Dmp.swap_desc) ->
      check_int "z_lo" 0 s.z_lo;
      check_int "z_hi" nz s.z_hi)
    descs

let test_distribute_uvkbe_two_fields () =
  let p = (B.find "uvkbe").make B.Tiny in
  let m =
    Wsc_ir.Pass.run_pipeline
      [ Core.Stencil_inlining.pass; Core.Distribute.distribute_pass ]
      (P.compile p)
  in
  let swaps = find_ops_by_name "dmp.swap" m in
  check_int "two communicated fields" 2 (List.length swaps);
  (* u is read at [-1,0] (west); v at [0,-1] (south) *)
  let dirs =
    List.concat_map (fun sw -> List.map (fun (s : Dmp.swap_desc) -> s.dir) (Dmp.swaps sw)) swaps
  in
  check "west present" true (List.mem Dmp.West dirs);
  check "south present" true (List.mem Dmp.South dirs);
  check_int "only the needed directions" 2 (List.length dirs)

let test_distribute_rejects_diagonals () =
  (* box patterns are outside the star-shaped communication library
     (paper SS5.6): the compiler must refuse, not miscompile *)
  let expr =
    P.Add (P.Access ("u", [ 1; -1; 0 ]), P.Access ("u", [ 0; 0; 0 ]))
  in
  let p =
    {
      P.pname = "diag";
      frontend = "test";
      extents = (4, 4, 4);
      halo = 1;
      state = [ "u" ];
      kernels = [ { P.kname = "k"; output = "w"; expr } ];
      next_state = [ "w" ];
      iterations = 1;
      use_loop = true;
      dsl_loc = 0;
    }
  in
  match Wsc_ir.Pass.run_pipeline [ Core.Distribute.distribute_pass ] (P.compile p) with
  | exception Wsc_ir.Pass.Pass_failed (_, Core.Distribute.Distribute_error _) -> ()
  | exception Core.Distribute.Distribute_error _ -> ()
  | _ -> Alcotest.fail "expected diagonal-access rejection"

let test_distribute_topology () =
  let p = (B.find "jacobian").make (B.Proxy (5, 7)) in
  let m =
    Wsc_ir.Pass.run_pipeline [ Core.Distribute.distribute_pass ] (P.compile p)
  in
  let sw = Option.get (find_op_by_name "dmp.swap" m) in
  check "topology is the xy extent" true (Dmp.topology sw = (5, 7))

(* ------------------------------------------------------------------ *)
(* tensorize                                                           *)
(* ------------------------------------------------------------------ *)

let test_tensorize_types () =
  let p = (B.find "diffusion").make B.Tiny in
  let m = Wsc_ir.Pass.run_pipeline group1 (P.compile p) in
  let apply = Option.get (find_op_by_name "stencil.apply" m) in
  (match (result apply).vtyp with
  | Temp ([ _; _ ], Tensor ([ z ], F32)) ->
      check_int "column carries z halo" (6 + 4) z
  | t -> Alcotest.failf "bad type %s" (Wsc_ir.Printer.typ_to_string t));
  check_int "z halo attr" 2 (int_attr_exn apply "z_halo");
  check_int "z interior attr" 6 (int_attr_exn apply "z_interior");
  (* all accesses are now 2-D *)
  walk_op
    (fun o ->
      if o.opname = "stencil.access" then
        check_int "2-D offsets" 2 (List.length (dense_ints_exn o "offset")))
    m

let test_group1_semantics_all () =
  List.iter
    (fun (d : B.descr) ->
      let p = d.make B.Tiny in
      let _, r, g = run_transformed p group1 in
      assert_matches ("group1 " ^ d.id) r g)
    B.all

(* ------------------------------------------------------------------ *)
(* varith                                                              *)
(* ------------------------------------------------------------------ *)

let test_to_varith_collapses_chains () =
  let p = (B.find "seismic").make B.Tiny in
  let m =
    Wsc_ir.Pass.run_pipeline (group1 @ [ Core.Varith_passes.to_varith_pass ])
      (P.compile p)
  in
  (* the 25-point reduction collapses to few variadic adds *)
  let adds = Stats.count m "varith.add" in
  check "chains collapsed" true (adds >= 1);
  check_int "binary addf gone" 0 (Stats.count m "arith.addf");
  (* the biggest varith.add has many operands *)
  let max_arity =
    List.fold_left
      (fun acc o -> max acc (List.length o.operands))
      0
      (find_ops_by_name "varith.add" m)
  in
  check "wide variadic op" true (max_arity >= 10)

let test_from_varith_roundtrip () =
  let p = (B.find "jacobian").make B.Tiny in
  let passes =
    group1
    @ [ Core.Varith_passes.to_varith_pass; Core.Varith_passes.from_varith_pass ]
  in
  let m, r, g = run_transformed p passes in
  check_int "no varith left" 0 (Stats.count m "varith.add");
  assert_matches "varith roundtrip" r g

let test_fuse_repeated_operands () =
  (* u[0]*3 expressed as u+u+u must become 3*u *)
  let expr =
    P.Add
      ( P.Add (P.Access ("u", [ 0; 0; 0 ]), P.Access ("u", [ 0; 0; 0 ])),
        P.Add (P.Access ("u", [ 0; 0; 0 ]), P.Access ("u", [ 1; 0; 0 ])) )
  in
  let p =
    {
      P.pname = "rep";
      frontend = "test";
      extents = (3, 3, 4);
      halo = 1;
      state = [ "u" ];
      kernels = [ { P.kname = "k"; output = "w"; expr } ];
      next_state = [ "w" ];
      iterations = 1;
      use_loop = true;
      dsl_loc = 0;
    }
  in
  let passes =
    group1
    @ [ Core.Varith_passes.to_varith_pass; Core.Varith_passes.fuse_repeated_pass ]
  in
  let m, r, g = run_transformed p passes in
  (* a multiplication by the repeat count appears *)
  let has_mul_by_3 =
    List.exists
      (fun o ->
        List.exists
          (fun v ->
            match
              find_op
                (fun c ->
                  c.opname = "arith.constant"
                  && List.exists (fun rv -> rv.vid = v.vid) c.results)
                m
            with
            | Some c -> Wsc_dialects.Arith.constant_value c = Some 3.0
            | None -> false)
          o.operands)
      (find_ops_by_name "arith.mulf" m)
  in
  check "multiplication by 3" true has_mul_by_3;
  assert_matches "fuse repeated" r g

(* ------------------------------------------------------------------ *)
(* convert-stencil-to-csl-stencil                                      *)
(* ------------------------------------------------------------------ *)

let csl_stencil_passes ?(opts = Core.To_csl_stencil.default_options) () =
  group2
    [ Core.To_csl_stencil.lower_swaps_pass; Core.To_csl_stencil.pass ~options:opts () ]

let config_of_bench ?(opts = Core.To_csl_stencil.default_options) id =
  let p = (B.find id).make B.Tiny in
  let m = Wsc_ir.Pass.run_pipeline (csl_stencil_passes ~opts ()) (P.compile p) in
  Core.Csl_stencil.config_of
    (Option.get (find_op_by_name "csl_stencil.apply" m))

let test_promotion_detected () =
  List.iter
    (fun (id, expect) ->
      let cfg = config_of_bench id in
      check_int (id ^ " promoted coeffs") expect (List.length cfg.coeffs))
    [ ("jacobian", 4); ("diffusion", 8); ("acoustic", 8); ("seismic", 16); ("uvkbe", 0) ]

let test_promotion_coefficient_values () =
  let cfg = config_of_bench "jacobian" in
  List.iter
    (fun (_, _, _, c) ->
      if Float.abs (c -. 0.16666666) > 1e-6 then
        Alcotest.failf "unexpected coefficient %g" c)
    cfg.coeffs

let test_promotion_disable () =
  let opts =
    { Core.To_csl_stencil.default_options with promote_coefficients = false }
  in
  let cfg = config_of_bench ~opts "jacobian" in
  check_int "no promotion" 0 (List.length cfg.coeffs)

let test_chunking_budget () =
  (* a tight budget forces multiple chunks *)
  let opts =
    { Core.To_csl_stencil.default_options with comm_budget_bytes = 32 }
  in
  let cfg = config_of_bench ~opts "jacobian" in
  check "chunked" true (cfg.num_chunks > 1);
  check_int "chunks x size = range" 6 (cfg.num_chunks * cfg.chunk_size)

let test_chunking_override_must_divide () =
  let opts =
    { Core.To_csl_stencil.default_options with num_chunks_override = Some 5 }
  in
  (* z interior is 6; 5 does not divide it *)
  match config_of_bench ~opts "jacobian" with
  | exception Wsc_ir.Pass.Pass_failed _ -> ()
  | exception Core.To_csl_stencil.Lowering_error _ -> ()
  | _ -> Alcotest.fail "expected chunking error"

let test_group2_semantics_all_variants () =
  let variants =
    [
      ("default", Core.To_csl_stencil.default_options);
      ( "2 chunks",
        { Core.To_csl_stencil.default_options with num_chunks_override = Some 2 } );
      ( "no promotion",
        { Core.To_csl_stencil.default_options with promote_coefficients = false } );
      ( "no one-shot",
        { Core.To_csl_stencil.default_options with one_shot_reduction = false } );
    ]
  in
  List.iter
    (fun (vname, opts) ->
      List.iter
        (fun (d : B.descr) ->
          let p = d.make B.Tiny in
          let _, r, g = run_transformed p (csl_stencil_passes ~opts ()) in
          assert_matches (Printf.sprintf "group2 %s %s" d.id vname) r g)
        B.all)
    variants

let mixed_program () =
  (* mask * (u[-1] + u[1]) mixes local and remote accesses in one
     product: the reduce-on-arrival split cannot express it, so the
     conversion must fall back to pack mode *)
  let expr =
    P.Mul
      ( P.Access ("mask", [ 0; 0; 0 ]),
        P.Add (P.Access ("u", [ -1; 0; 0 ]), P.Access ("u", [ 1; 0; 0 ])) )
  in
  {
    P.pname = "mixed";
    frontend = "test";
    extents = (3, 3, 4);
    halo = 1;
    state = [ "u"; "mask" ];
    kernels = [ { P.kname = "k"; output = "w"; expr } ];
    next_state = [ "w"; "mask" ];
    iterations = 2;
    use_loop = true;
    dsl_loc = 0;
  }

let test_mixed_term_pack_mode () =
  let p = mixed_program () in
  let m, r, g = run_transformed p (csl_stencil_passes ()) in
  let apply = Option.get (find_op_by_name "csl_stencil.apply" m) in
  let cfg = Core.Csl_stencil.config_of apply in
  (* pack mode: no promoted coefficients, accumulator holds one slot per
     received distance-column (east depth 1 + west depth 1 = 2 slots) *)
  check_int "no promotion in pack mode" 0 (List.length cfg.coeffs);
  (match (Core.Csl_stencil.acc_init apply).vtyp with
  | Tensor ([ n ], F32) -> check_int "packed accumulator" (2 * 4) n
  | _ -> Alcotest.fail "bad accumulator type");
  assert_matches "pack mode" r g

let test_mixed_term_pack_mode_bufferized () =
  let p = mixed_program () in
  let passes = csl_stencil_passes () @ [ Core.Bufferize.pass () ] in
  let _, r, g = run_transformed p passes in
  assert_matches "pack mode bufferized" r g

(* ------------------------------------------------------------------ *)
(* bufferize + fmac fusion                                             *)
(* ------------------------------------------------------------------ *)

let bufferize_passes ?(fuse = true) ?(fuse_pass = false) () =
  csl_stencil_passes ()
  @ [ Core.Bufferize.pass ~options:{ Core.Bufferize.fuse_fmac = fuse } () ]
  @ if fuse_pass then [ Core.Linalg_fuse.pass ] else []

let test_bufferize_dps_form () =
  let p = (B.find "seismic").make B.Tiny in
  let m = Wsc_ir.Pass.run_pipeline (bufferize_passes ()) (P.compile p) in
  let apply = Option.get (find_op_by_name "csl_stencil.apply" m) in
  check "marked bufferized" true (has_attr apply "bufferized");
  (* regions contain only reference-semantics ops *)
  walk_op
    (fun o ->
      match o.opname with
      | "arith.addf" | "arith.mulf" | "varith.add" | "tensor.extract_slice" ->
          Alcotest.failf "value-semantics op %s survives bufferization" o.opname
      | _ -> ())
    apply

let test_bufferize_semantics_all () =
  List.iter
    (fun (d : B.descr) ->
      let p = d.make B.Tiny in
      let _, r, g = run_transformed p (bufferize_passes ()) in
      assert_matches ("bufferize " ^ d.id) r g)
    B.all

let test_fmac_fusion_equivalence () =
  (* direct fusion and the standalone pass must produce the same count *)
  List.iter
    (fun (d : B.descr) ->
      let p = d.make B.Tiny in
      let m1 = Wsc_ir.Pass.run_pipeline (bufferize_passes ~fuse:true ()) (P.compile p) in
      let m2 =
        Wsc_ir.Pass.run_pipeline
          (bufferize_passes ~fuse:false ~fuse_pass:true ())
          (P.compile p)
      in
      check_int ("fmac count " ^ d.id) (Stats.count m1 "linalg.fmac")
        (Stats.count m2 "linalg.fmac"))
    B.all

let test_unfused_still_correct () =
  List.iter
    (fun (d : B.descr) ->
      let p = d.make B.Tiny in
      let _, r, g = run_transformed p (bufferize_passes ~fuse:false ()) in
      assert_matches ("unfused " ^ d.id) r g)
    B.all

(* ------------------------------------------------------------------ *)
(* memory planning                                                     *)
(* ------------------------------------------------------------------ *)

let test_memory_check () =
  (* a z extent too large for 48 kB must be rejected by the actor pass *)
  let p =
    {
      ((B.find "jacobian").make B.Tiny) with
      P.extents = (4, 4, 4000);
      iterations = 1;
    }
  in
  match Core.Pipeline.compile (P.compile p) with
  | exception Wsc_ir.Pass.Pass_failed (_, Core.To_actors.Actor_error _) -> ()
  | exception Core.To_actors.Actor_error _ -> ()
  | exception Core.To_csl_stencil.Lowering_error _ -> ()
  | exception Wsc_ir.Pass.Pass_failed (_, Core.To_csl_stencil.Lowering_error _) -> ()
  | _ -> Alcotest.fail "expected per-PE memory error"

let () =
  Alcotest.run "passes"
    [
      ( "inlining",
        [
          Alcotest.test_case "fuses uvkbe" `Quick test_inlining_fuses_uvkbe;
          Alcotest.test_case "semantics" `Quick test_inlining_semantics_scalar;
          Alcotest.test_case "passthrough" `Quick test_inlining_passthrough;
        ] );
      ( "canonicalize",
        [
          Alcotest.test_case "constant folding" `Quick test_canonicalize_folds_constants;
          Alcotest.test_case "cse after inlining" `Quick
            test_canonicalize_cse_after_inlining;
          Alcotest.test_case "identities" `Quick test_canonicalize_identities;
        ] );
      ( "distribute",
        [
          Alcotest.test_case "swap structure" `Quick test_distribute_swaps;
          Alcotest.test_case "two fields" `Quick test_distribute_uvkbe_two_fields;
          Alcotest.test_case "topology" `Quick test_distribute_topology;
          Alcotest.test_case "rejects diagonals" `Quick
            test_distribute_rejects_diagonals;
        ] );
      ( "tensorize",
        [
          Alcotest.test_case "types" `Quick test_tensorize_types;
          Alcotest.test_case "group1 semantics (all)" `Quick test_group1_semantics_all;
        ] );
      ( "varith",
        [
          Alcotest.test_case "collapse chains" `Quick test_to_varith_collapses_chains;
          Alcotest.test_case "roundtrip" `Quick test_from_varith_roundtrip;
          Alcotest.test_case "fuse repeated" `Quick test_fuse_repeated_operands;
        ] );
      ( "csl-stencil",
        [
          Alcotest.test_case "promotion detected" `Quick test_promotion_detected;
          Alcotest.test_case "promotion values" `Quick test_promotion_coefficient_values;
          Alcotest.test_case "promotion disable" `Quick test_promotion_disable;
          Alcotest.test_case "chunk budget" `Quick test_chunking_budget;
          Alcotest.test_case "chunk override divides" `Quick
            test_chunking_override_must_divide;
          Alcotest.test_case "semantics (all variants)" `Slow
            test_group2_semantics_all_variants;
          Alcotest.test_case "mixed term: pack mode" `Quick test_mixed_term_pack_mode;
          Alcotest.test_case "pack mode bufferized" `Quick
            test_mixed_term_pack_mode_bufferized;
        ] );
      ( "bufferize",
        [
          Alcotest.test_case "DPS form" `Quick test_bufferize_dps_form;
          Alcotest.test_case "semantics (all)" `Quick test_bufferize_semantics_all;
          Alcotest.test_case "fmac fusion equivalence" `Quick
            test_fmac_fusion_equivalence;
          Alcotest.test_case "unfused correct" `Quick test_unfused_still_correct;
        ] );
      ( "memory",
        [ Alcotest.test_case "48 kB check" `Quick test_memory_check ] );
    ]
