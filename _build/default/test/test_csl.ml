(* Tests for the csl-side backend: actor lowering (group 4), DSD lowering
   (group 5), the generated module structure, the CSL printer and the
   runtime-library source. *)

open Wsc_ir.Ir
module Stats = Wsc_ir.Stats
module P = Wsc_frontends.Stencil_program
module B = Wsc_benchmarks.Benchmarks
module Core = Wsc_core
module Csl = Wsc_core.Csl

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile ?(options = Core.Pipeline.default_options) id =
  let p = (B.find id).make B.Tiny in
  Core.Pipeline.compile ~options (P.compile p)

let program_of compiled = snd (Core.Pipeline.modules_of compiled)
let layout_of compiled = fst (Core.Pipeline.modules_of compiled)

let func_names program =
  List.filter_map
    (fun o ->
      if o.opname = "csl.func" || o.opname = "csl.task" then
        Some (string_attr_exn o "sym_name")
      else None)
    (Csl.module_body program)

(* ------------------------------------------------------------------ *)
(* group 4: the actor task graph                                       *)
(* ------------------------------------------------------------------ *)

let test_task_graph_structure () =
  let program = program_of (compile "jacobian") in
  let names = func_names program in
  List.iter
    (fun n -> check ("has " ^ n) true (List.mem n names))
    [ "run"; "loop_cond"; "advance"; "apply0_start"; "apply0_chunk"; "apply0_done" ];
  (* exactly one task (the advance local task) *)
  check_int "one local task" 1 (Stats.count program "csl.task");
  (* no timestep loop remains anywhere *)
  check_int "no scf.for" 0 (Stats.count program "scf.for")

let test_chained_applies_without_inlining () =
  let options = { Core.Pipeline.default_options with inline_stencils = false } in
  let program = program_of (compile ~options "uvkbe") in
  let names = func_names program in
  List.iter
    (fun n -> check ("has " ^ n) true (List.mem n names))
    [ "apply0_start"; "apply0_done"; "apply1_start"; "apply1_done" ];
  (* the first done callback chains into the second exchange *)
  let done0 =
    List.find
      (fun o ->
        (o.opname = "csl.func" || o.opname = "csl.task")
        && string_attr o "sym_name" = Some "apply0_done")
      (Csl.module_body program)
  in
  let calls = find_ops_by_name "csl.call" done0 in
  check "done0 calls apply1_start" true
    (List.exists (fun c -> string_attr_exn c "callee" = "apply1_start") calls)

let test_pointer_rotation_jacobian () =
  (* single state grid: simple double-buffer swap *)
  let program = program_of (compile "jacobian") in
  let ap = Option.get (find_op_by_name "csl.assign_ptrs" program) in
  check "swap" true
    (Csl.string_list_attr ap "dests" = [ "ptr_state0"; "ptr_out0" ]
    && Csl.string_list_attr ap "srcs" = [ "ptr_out0"; "ptr_state0" ])

let test_pointer_rotation_acoustic () =
  (* two time levels: three-buffer rotation *)
  let program = program_of (compile "acoustic") in
  let ap = Option.get (find_op_by_name "csl.assign_ptrs" program) in
  let dests = Csl.string_list_attr ap "dests" in
  let srcs = Csl.string_list_attr ap "srcs" in
  check "dests" true (dests = [ "ptr_state0"; "ptr_state1"; "ptr_out0" ]);
  (* u_prev <- u, u <- u_next, out <- freed buffer *)
  check "rotation" true (srcs = [ "ptr_state1"; "ptr_out0"; "ptr_state0" ])

let test_memory_accounting () =
  let program = program_of (compile "seismic") in
  let declared =
    List.fold_left
      (fun acc o ->
        if o.opname = "csl.global_buffer" then
          acc
          + (match attr_exn o "type" with
            | Type_attr t -> size_in_bytes t
            | _ -> 0)
        else acc)
      0 (Csl.module_body program)
  in
  let recorded = int_attr_exn program "memory_bytes" in
  check "declared <= recorded (reserve included)" true (declared < recorded);
  check "within a PE" true (recorded <= 48 * 1024)

let test_result_ptrs () =
  let program = program_of (compile "acoustic") in
  match attr_exn program "result_ptrs" with
  | Array_attr [ String_attr a; String_attr b ] ->
      check "state ptrs" true (a = "ptr_state0" && b = "ptr_state1")
  | _ -> Alcotest.fail "bad result_ptrs"

(* ------------------------------------------------------------------ *)
(* group 5: DSDs and builtins                                          *)
(* ------------------------------------------------------------------ *)

let test_no_linalg_or_memref_left () =
  List.iter
    (fun (d : B.descr) ->
      let program = program_of (compile d.id) in
      walk_op
        (fun o ->
          if
            String.length o.opname > 7
            && (String.sub o.opname 0 7 = "linalg." || String.sub o.opname 0 7 = "memref.")
          then Alcotest.failf "%s: %s survives group 5" d.id o.opname)
        program)
    B.all

let test_dsd_builtins_present () =
  let program = program_of (compile "seismic") in
  check "fmacs generated" true (Stats.count program "csl.fmacs" > 0);
  check "dsd definitions" true (Stats.count program "csl.get_mem_dsd" > 0)

let test_fmacs_count_matches_fusion () =
  (* every linalg.fmac of the bufferized form becomes a csl.fmacs *)
  let p = (B.find "diffusion").make B.Tiny in
  let mid =
    Wsc_ir.Pass.run_pipeline
      (Core.Pipeline.frontend_passes Core.Pipeline.default_options
      @ Core.Pipeline.middle_passes Core.Pipeline.default_options)
      (P.compile p)
  in
  let n_fmac = Stats.count mid "linalg.fmac" in
  let program = program_of (Core.Pipeline.compile (P.compile p)) in
  check_int "fmacs preserved" n_fmac (Stats.count program "csl.fmacs")

(* ------------------------------------------------------------------ *)
(* layout module                                                       *)
(* ------------------------------------------------------------------ *)

let test_layout_module () =
  let compiled = compile "jacobian" in
  let layout = layout_of compiled in
  check "is layout" true (Csl.module_kind_of layout = Csl.Layout);
  let sr = Option.get (find_op_by_name "csl.set_rectangle" layout) in
  check_int "width" 4 (int_attr_exn sr "width");
  check_int "height" 4 (int_attr_exn sr "height");
  let pp = Option.get (find_op_by_name "csl.place_pes" layout) in
  check "program file" true
    (string_attr_exn pp "file" = "stencil_program.csl")

(* ------------------------------------------------------------------ *)
(* CSL printer                                                         *)
(* ------------------------------------------------------------------ *)

let test_printer_files () =
  let files = Core.Csl_printer.print_files (compile "seismic") in
  check_int "three files" 3 (List.length files);
  List.iter
    (fun (f : Core.Csl_printer.file) ->
      check (f.filename ^ " nonempty") true (Core.Csl_printer.loc_of f.contents > 5))
    files

let expect_substrings text subs =
  List.iter
    (fun sub ->
      let found =
        let n = String.length text and m = String.length sub in
        let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
        go 0
      in
      if not found then Alcotest.failf "missing %S in generated CSL" sub)
    subs

let test_printer_program_constructs () =
  let files = Core.Csl_printer.print_files (compile "jacobian") in
  let program =
    (List.find
       (fun (f : Core.Csl_printer.file) -> f.filename = "stencil_program.csl")
       files)
      .contents
  in
  expect_substrings program
    [
      "@import_module";
      "@zeros";
      "@get_dsd(mem1d_dsd";
      "@fmacs(";
      "@fmovs(";
      "comms.communicate";
      "task advance()";
      "@bind_local_task";
      "@export_symbol(run)";
      "unblock_cmd_stream";
      "fn apply0_chunk(arg0: i16)";
    ];
  (* the unpromoted UVKBE squares produce explicit adds and multiplies *)
  let files2 = Core.Csl_printer.print_files (compile "uvkbe") in
  let program2 =
    (List.find
       (fun (f : Core.Csl_printer.file) -> f.filename = "stencil_program.csl")
       files2)
      .contents
  in
  expect_substrings program2 [ "@fadds("; "@fmuls(" ]

let test_printer_layout_constructs () =
  let files = Core.Csl_printer.print_files (compile "jacobian") in
  let layout =
    (List.find
       (fun (f : Core.Csl_printer.file) ->
         f.filename = "stencil_program_layout.csl")
       files)
      .contents
  in
  expect_substrings layout
    [ "@set_rectangle"; "@set_tile_code"; "@export_name"; "layout {" ]

let test_comms_library_source () =
  let src = Core.Comms_csl.source in
  check "substantial library" true (Core.Csl_printer.loc_of src > 250);
  expect_substrings src
    [
      "fn communicate(";
      "task east_recv_column()";
      "task west_recv_column()";
      "task north_recv_column()";
      "task south_recv_column()";
      "wse2_self_send";
      "@fmacs(stage_dsd, stage_dsd, fabin_east";
      "@bind_data_task";
      "@get_color";
    ]

let test_printer_deterministic () =
  let one () = Core.Csl_printer.print_files (compile "acoustic") in
  let a = one () and b = one () in
  List.iter2
    (fun (x : Core.Csl_printer.file) (y : Core.Csl_printer.file) ->
      Alcotest.(check string) ("stable " ^ x.filename) x.contents y.contents)
    a b

(* ------------------------------------------------------------------ *)
(* wrapper params                                                      *)
(* ------------------------------------------------------------------ *)

let test_wrapper_params () =
  let p = (B.find "seismic").make B.Tiny in
  let m =
    Wsc_ir.Pass.run_pipeline
      (Core.Pipeline.frontend_passes Core.Pipeline.default_options
      @ Core.Pipeline.middle_passes Core.Pipeline.default_options)
      (P.compile p)
  in
  check "wrapped" true (Core.Csl_wrapper.is_module m);
  let params = Core.Csl_wrapper.params_of m in
  check_int "width" 4 params.width;
  check_int "height" 4 params.height;
  check_int "pattern = radius + 1" 5 params.pattern;
  check_int "z with halo" (10 + 8) params.z_dim

let () =
  Alcotest.run "csl"
    [
      ( "actors",
        [
          Alcotest.test_case "task graph" `Quick test_task_graph_structure;
          Alcotest.test_case "chained applies" `Quick
            test_chained_applies_without_inlining;
          Alcotest.test_case "rotation: jacobian" `Quick test_pointer_rotation_jacobian;
          Alcotest.test_case "rotation: acoustic" `Quick test_pointer_rotation_acoustic;
          Alcotest.test_case "memory accounting" `Quick test_memory_accounting;
          Alcotest.test_case "result ptrs" `Quick test_result_ptrs;
        ] );
      ( "dsd",
        [
          Alcotest.test_case "no linalg/memref left" `Quick test_no_linalg_or_memref_left;
          Alcotest.test_case "builtins present" `Quick test_dsd_builtins_present;
          Alcotest.test_case "fmacs preserved" `Quick test_fmacs_count_matches_fusion;
        ] );
      ("layout", [ Alcotest.test_case "layout module" `Quick test_layout_module ]);
      ( "printer",
        [
          Alcotest.test_case "files" `Quick test_printer_files;
          Alcotest.test_case "program constructs" `Quick test_printer_program_constructs;
          Alcotest.test_case "layout constructs" `Quick test_printer_layout_constructs;
          Alcotest.test_case "comms library" `Quick test_comms_library_source;
          Alcotest.test_case "deterministic" `Quick test_printer_deterministic;
        ] );
      ("wrapper", [ Alcotest.test_case "params" `Quick test_wrapper_params ]);
    ]
