(* Tests for the three frontends and the shared stencil-program
   representation: Fortran parsing and stencil extraction, symbolic
   finite differences, kernel-metadata validation, and program-to-IR
   compilation. *)

module P = Wsc_frontends.Stencil_program
module Flang = Wsc_frontends.Flang_fe
module Devito = Wsc_frontends.Devito_fe
module Psy = Wsc_frontends.Psyclone_fe
module B = Wsc_benchmarks.Benchmarks
module I = Wsc_dialects.Interp

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* stencil_program utilities                                           *)
(* ------------------------------------------------------------------ *)

let test_accesses_and_inputs () =
  let e =
    P.Add
      ( P.Mul (P.Const 2.0, P.Access ("u", [ 1; 0; 0 ])),
        P.Add (P.Access ("v", [ 0; 0; 0 ]), P.Access ("u", [ 0; 0; 0 ])) )
  in
  let k = { P.kname = "k"; output = "w"; expr = e } in
  check "accesses" true
    (P.accesses e = [ ("u", [ 1; 0; 0 ]); ("v", [ 0; 0; 0 ]); ("u", [ 0; 0; 0 ]) ]);
  check "inputs dedup in order" true (P.kernel_inputs k = [ "u"; "v" ]);
  check_int "flops" 3 (P.expr_flops e)

let test_fold_constants () =
  let e = P.Mul (P.Const 2.0, P.Add (P.Const 1.0, P.Const 3.0)) in
  check "folds" true (P.fold_constants e = P.Const 8.0);
  let e2 = P.Add (P.Access ("u", [ 0 ]), P.Sub (P.Const 5.0, P.Const 2.0)) in
  check "partial fold" true
    (P.fold_constants e2 = P.Add (P.Access ("u", [ 0 ]), P.Const 3.0))

let test_program_radius () =
  let p = (B.find "seismic").make B.Tiny in
  check_int "seismic radius 4" 4 (P.program_radius p);
  let p2 = (B.find "jacobian").make B.Tiny in
  check_int "jacobian radius 1" 1 (P.program_radius p2)

let test_compile_verifies () =
  List.iter
    (fun (d : B.descr) ->
      let m = P.compile (d.make B.Tiny) in
      Wsc_ir.Verifier.verify m)
    B.all

(* ------------------------------------------------------------------ *)
(* mini-Flang                                                          *)
(* ------------------------------------------------------------------ *)

let simple_fortran =
  {|
real :: a(0:nx+1, 0:ny+1, 0:nz+1)
real :: b(0:nx+1, 0:ny+1, 0:nz+1)
do t = 1, 5
  do k = 1, nz
    do j = 1, ny
      do i = 1, nx
        b(i,j,k) = 0.5 * (a(i-1,j,k) + a(i+1,j,k))
      end do
    end do
  end do
  a = b
end do
|}

let test_flang_parse () =
  let p = Flang.compile ~name:"t" ~extents:(4, 4, 4) simple_fortran in
  check_int "one kernel" 1 (List.length p.P.kernels);
  check "state" true (p.P.state = [ "a" ]);
  check "next state" true (p.P.next_state = [ "b" ]);
  check_int "source trip count" 5 p.P.iterations;
  check_int "halo from offsets" 1 p.P.halo;
  (* loop var order: innermost i is x *)
  check "x offsets" true
    (P.accesses (List.hd p.P.kernels).P.expr
    = [ ("a", [ -1; 0; 0 ]); ("a", [ 1; 0; 0 ]) ])

let test_flang_iteration_override () =
  let p = Flang.compile ~name:"t" ~extents:(4, 4, 4) ~iterations:9 simple_fortran in
  check_int "override wins" 9 p.P.iterations

let test_flang_no_timeloop () =
  let src =
    {|
real :: a(0:nx+1, 0:ny+1, 0:nz+1)
real :: b(0:nx+1, 0:ny+1, 0:nz+1)
do k = 1, nz
  do j = 1, ny
    do i = 1, nx
      b(i,j,k) = a(i,j,k) + 1.0
    end do
  end do
end do
|}
  in
  let p = Flang.compile ~name:"t" ~extents:(4, 4, 4) src in
  check_int "single shot" 1 p.P.iterations;
  check "state is input" true (p.P.state = [ "a" ])

let test_flang_semantics () =
  (* un(i) = 0.5*(u(i-1)+u(i+1)) for one step, checked by hand at a point *)
  let p = Flang.compile ~name:"t" ~extents:(4, 4, 4) ~iterations:1 simple_fortran in
  let grids = P.run_reference p in
  let g = List.hd grids in
  (* reconstruct the expected value from the deterministic init *)
  let expected =
    0.5 *. (I.init_value [ 0; 1; 1 ] +. I.init_value [ 2; 1; 1 ])
  in
  check_float "hand-computed point" expected (I.grid_get_scalar g [ 1; 1; 1 ])

let test_flang_errors () =
  let cases =
    [
      (* imperfect nest *)
      {|
do k = 1, nz
  do j = 1, ny
    a(1,j,k) = 1.0
  end do
end do
|};
      (* free scalar in expression *)
      {|
do k = 1, nz
  do j = 1, ny
    do i = 1, nx
      b(i,j,k) = a(i,j,k) * alpha
    end do
  end do
end do
|};
      (* missing end *)
      {|
do k = 1, nz
  do j = 1, ny
|};
    ]
  in
  List.iter
    (fun src ->
      match Flang.compile ~name:"t" ~extents:(2, 2, 2) src with
      | exception Flang.Frontend_error _ -> ()
      | _ -> Alcotest.fail "expected frontend error")
    cases

(* ------------------------------------------------------------------ *)
(* mini-Devito                                                         *)
(* ------------------------------------------------------------------ *)

let test_deriv2_coeffs_consistency () =
  (* central-difference coefficients sum to zero and are symmetric *)
  List.iter
    (fun order ->
      let cs = Devito.deriv2_coeffs order in
      let sum = List.fold_left (fun a (_, c) -> a +. c) 0.0 cs in
      check_float (Printf.sprintf "order %d sums to 0" order) 0.0 sum;
      List.iter
        (fun (o, c) ->
          let c' = List.assoc (-o) cs in
          check "symmetric" true (c = c'))
        cs)
    [ 2; 4; 8 ]

let test_deriv2_exact_on_quadratic () =
  (* d2/dx2 of x^2 = 2 exactly for any order on the integer grid *)
  List.iter
    (fun order ->
      let cs = Devito.deriv2_coeffs order in
      let x0 = 10.0 in
      let d2 =
        List.fold_left
          (fun acc (o, c) -> acc +. (c *. ((x0 +. float_of_int o) ** 2.0)))
          0.0 cs
      in
      check_float (Printf.sprintf "order %d exact" order) 2.0 d2)
    [ 2; 4; 8 ]

let test_devito_operator_structure () =
  let g = Devito.grid ~shape:(4, 4, 6) "g" in
  let u = Devito.time_function ~time_order:2 ~space_order:4 ~grid:g "u" in
  let open Devito in
  let p =
    operator ~name:"wave" ~iterations:3
      [ eq (forward u) ((num 2.0 * fn u) - backward u + laplace (fn u)) ]
  in
  check "two time levels" true (p.P.state = [ "u_prev"; "u" ]);
  check "rotation" true (p.P.next_state = [ "u"; "u_next" ]);
  check_int "radius 2 from order 4" 2 p.P.halo;
  (* 13-point stencil: 3 axes x 5 points - 2 duplicate centres *)
  let offsets =
    List.sort_uniq compare (List.map snd (P.accesses (List.hd p.P.kernels).P.expr))
  in
  check_int "13 distinct access offsets" 13 (List.length offsets)

let test_devito_lhs_must_be_forward () =
  let g = Devito.grid ~shape:(4, 4, 4) "g" in
  let u = Devito.time_function ~space_order:2 ~grid:g "u" in
  let open Devito in
  match operator ~name:"bad" ~iterations:1 [ eq (fn u) (fn u) ] with
  | exception Devito.Frontend_error _ -> ()
  | _ -> Alcotest.fail "expected frontend error"

let test_devito_spacing () =
  (* halving the spacing quadruples the second-derivative coefficients *)
  let g1 = Devito.grid ~spacing:1.0 ~shape:(4, 4, 4) "g" in
  let g2 = Devito.grid ~spacing:0.5 ~shape:(4, 4, 4) "g" in
  let mk g =
    let u = Devito.time_function ~space_order:2 ~grid:g "u" in
    let open Devito in
    operator ~name:"d" ~iterations:1 [ eq (forward u) (dxx (fn u)) ]
  in
  let coeff_of p =
    let rec find = function
      | P.Mul (P.Const c, P.Access ("u", [ 1; 0; 0 ])) -> Some c
      | P.Add (a, b) | P.Sub (a, b) | P.Mul (a, b) | P.Div (a, b) -> (
          match find a with Some c -> Some c | None -> find b)
      | _ -> None
    in
    find (List.hd (mk p).P.kernels).P.expr
  in
  match (coeff_of g1, coeff_of g2) with
  | Some c1, Some c2 -> check_float "4x coefficient" (4.0 *. c1) c2
  | _ -> Alcotest.fail "coefficient not found"

(* ------------------------------------------------------------------ *)
(* mini-PSyclone                                                       *)
(* ------------------------------------------------------------------ *)

let test_psyclone_metadata_validation () =
  let open Psy in
  let bad_cases =
    [
      (* reads beyond declared depth *)
      kernel ~name:"k1"
        ~meta:
          [
            { field = "u"; access = Gh_read; shape = Cross 1 };
            { field = "w"; access = Gh_write; shape = Pointwise };
          ]
        ~body:(P.Access ("u", [ 2; 0; 0 ]));
      (* pointwise field accessed at an offset *)
      kernel ~name:"k2"
        ~meta:
          [
            { field = "u"; access = Gh_read; shape = Pointwise };
            { field = "w"; access = Gh_write; shape = Pointwise };
          ]
        ~body:(P.Access ("u", [ 1; 0; 0 ]));
      (* undeclared field *)
      kernel ~name:"k3"
        ~meta:[ { field = "w"; access = Gh_write; shape = Pointwise } ]
        ~body:(P.Access ("ghost", [ 0; 0; 0 ]));
      (* diagonal access is not on the cross *)
      kernel ~name:"k4"
        ~meta:
          [
            { field = "u"; access = Gh_read; shape = Cross 2 };
            { field = "w"; access = Gh_write; shape = Pointwise };
          ]
        ~body:(P.Access ("u", [ 1; 1; 0 ]));
      (* reading the output *)
      kernel ~name:"k5"
        ~meta:[ { field = "w"; access = Gh_write; shape = Pointwise } ]
        ~body:(P.Access ("w", [ 0; 0; 0 ]));
    ]
  in
  List.iter
    (fun k ->
      match Psy.check_kernel k with
      | exception Psy.Frontend_error _ -> ()
      | () -> Alcotest.failf "kernel %s should have been rejected" k.Psy.kname)
    bad_cases

let test_psyclone_invoke () =
  let p = (B.find "uvkbe").make B.Tiny in
  check_int "two kernels" 2 (List.length p.P.kernels);
  check_int "four state fields" 4 (List.length p.P.state);
  check "no loop" true (not p.P.use_loop)

(* ------------------------------------------------------------------ *)
(* property tests                                                      *)
(* ------------------------------------------------------------------ *)

let expr_gen : P.expr QCheck.Gen.t =
  let open QCheck.Gen in
  sized
    (fix (fun self n ->
         if n <= 1 then
           oneof
             [
               map (fun c -> P.Const c) (float_range (-4.0) 4.0);
               map
                 (fun (dx, dy) -> P.Access ("u", [ dx; dy; 0 ]))
                 (pair (int_range (-1) 1) (int_range (-1) 1));
             ]
         else
           oneof
             [
               map2 (fun a b -> P.Add (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> P.Sub (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> P.Mul (a, b)) (self (n / 2)) (self (n / 2));
             ]))

let rec eval_expr (lookup : string -> int list -> float) = function
  | P.Const c -> c
  | P.Access (g, off) -> lookup g off
  | P.Add (a, b) -> eval_expr lookup a +. eval_expr lookup b
  | P.Sub (a, b) -> eval_expr lookup a -. eval_expr lookup b
  | P.Mul (a, b) -> eval_expr lookup a *. eval_expr lookup b
  | P.Div (a, b) -> eval_expr lookup a /. eval_expr lookup b

let prop_fold_constants_preserves =
  QCheck.Test.make ~name:"fold_constants preserves value" ~count:300
    (QCheck.make expr_gen) (fun e ->
      let lookup _ off = List.fold_left (fun a i -> a +. float_of_int i) 1.0 off in
      let v1 = eval_expr lookup e in
      let v2 = eval_expr lookup (P.fold_constants e) in
      Float.abs (v1 -. v2) <= 1e-6 *. Float.max 1.0 (Float.abs v1)
      || (Float.is_nan v1 && Float.is_nan v2))

let prop_emitted_ir_matches_expr =
  (* compiling a random expression and interpreting it must equal direct
     expression evaluation at every interior point *)
  QCheck.Test.make ~name:"compiled stencil matches expression" ~count:60
    (QCheck.make ~print:(fun _ -> "<expr>") expr_gen)
    (fun e ->
      let prog =
        {
          P.pname = "prop";
          frontend = "test";
          extents = (3, 3, 4);
          halo = 1;
          state = [ "u" ];
          kernels = [ { P.kname = "k"; output = "w"; expr = e } ];
          next_state = [ "w" ];
          iterations = 1;
          use_loop = false;
          dsl_loc = 0;
        }
      in
      let g0 = I.grid_of_typ (P.field_type prog) in
      I.init_grid g0;
      let expected p =
        eval_expr
          (fun _ off -> I.grid_get_scalar g0 (List.map2 ( + ) p off))
          e
      in
      let out = List.hd (P.run_reference prog) in
      let ok = ref true in
      I.iter_points [ (0, 3); (0, 3); (0, 4) ] (fun p ->
          let v = I.grid_get_scalar out p in
          let w = expected p in
          if Float.abs (v -. w) > 1e-5 *. Float.max 1.0 (Float.abs w) then
            ok := false);
      !ok)

let () =
  Alcotest.run "frontends"
    [
      ( "stencil-program",
        [
          Alcotest.test_case "accesses/inputs" `Quick test_accesses_and_inputs;
          Alcotest.test_case "fold constants" `Quick test_fold_constants;
          Alcotest.test_case "radius" `Quick test_program_radius;
          Alcotest.test_case "compile verifies" `Quick test_compile_verifies;
        ] );
      ( "flang",
        [
          Alcotest.test_case "parse + extract" `Quick test_flang_parse;
          Alcotest.test_case "iteration override" `Quick test_flang_iteration_override;
          Alcotest.test_case "no time loop" `Quick test_flang_no_timeloop;
          Alcotest.test_case "semantics" `Quick test_flang_semantics;
          Alcotest.test_case "errors" `Quick test_flang_errors;
        ] );
      ( "devito",
        [
          Alcotest.test_case "coeff consistency" `Quick test_deriv2_coeffs_consistency;
          Alcotest.test_case "exact on quadratics" `Quick test_deriv2_exact_on_quadratic;
          Alcotest.test_case "operator structure" `Quick test_devito_operator_structure;
          Alcotest.test_case "lhs must be forward" `Quick test_devito_lhs_must_be_forward;
          Alcotest.test_case "spacing" `Quick test_devito_spacing;
        ] );
      ( "psyclone",
        [
          Alcotest.test_case "metadata validation" `Quick
            test_psyclone_metadata_validation;
          Alcotest.test_case "invoke" `Quick test_psyclone_invoke;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fold_constants_preserves; prop_emitted_ir_matches_expr ] );
    ]
