(* Fine-grained unit tests for modules not already covered by the
   integration suites: the machine models, the bufferized-region
   evaluator, the communication-library source generator, the CSL
   printer's literal handling, the wrapper pass, and assorted edge
   cases. *)

open Wsc_ir.Ir
module B = Wsc_benchmarks.Benchmarks
module P = Wsc_frontends.Stencil_program
module Machine = Wsc_wse.Machine
module Core = Wsc_core
module Bufview = Wsc_core.Bufview
module Buf_eval = Wsc_core.Buf_eval

let () = Core.Csl_stencil_interp.register ()
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* machine models                                                      *)
(* ------------------------------------------------------------------ *)

let test_machine_parameters () =
  check "WSE2 self-sends" true Machine.wse2.self_send;
  check "WSE3 does not" true (not Machine.wse3.self_send);
  check "WSE3 fabric at least as large" true
    (Machine.wse3.max_width >= Machine.wse2.max_width
    && Machine.wse3.max_height >= Machine.wse2.max_height);
  check "48 kB per PE" true (Machine.wse2.pe_memory_bytes = 48 * 1024);
  (* peak of the full WSE3 wafer is near the marketed ~900k PEs x 2 FLOP *)
  let pes = Machine.total_pes Machine.wse3 in
  check "~900k PEs" true (pes > 850_000 && pes < 950_000);
  check "peak near 2 PFLOP/s" true
    (Machine.peak_flops Machine.wse3 > 1.5e15
    && Machine.peak_flops Machine.wse3 < 2.5e15)

let test_machine_bandwidth_ordering () =
  let m = Machine.wse3 in
  check "memory > fabric links > ramp" true
    (Machine.mem_bandwidth_per_pe m > Machine.ramp_bandwidth_per_pe m);
  check "links > ramp" true
    (Machine.fabric_bandwidth_per_pe m > Machine.ramp_bandwidth_per_pe m);
  check "of_generation roundtrip" true
    (Machine.of_generation Machine.WSE2 == Machine.wse2
    && Machine.of_generation Machine.WSE3 == Machine.wse3)

(* ------------------------------------------------------------------ *)
(* buf_eval                                                            *)
(* ------------------------------------------------------------------ *)

let eval_ops ops binds =
  let env = Buf_eval.new_env () in
  List.iter (fun (v, c) -> Buf_eval.bind env v c) binds;
  Buf_eval.eval_block env (new_block ops)

let test_buf_eval_linalg_chain () =
  (* acc <- copy(a); acc <- acc + b; acc <- acc + 2*c  == a + b + 2c *)
  let mk () = new_value (Memref ([ 4 ], F32)) in
  let a = mk () and bv = mk () and c = mk () and acc = mk () in
  let ops =
    [
      Wsc_dialects.Linalg_d.copy ~a ~out:acc;
      Wsc_dialects.Linalg_d.add ~a:acc ~b:bv ~out:acc;
      Wsc_dialects.Linalg_d.fmac ~a:acc ~b:c ~out:acc ~scalar:2.0;
      Core.Csl_stencil.yield [ acc ];
    ]
  in
  let arr v = Bufview.of_array (Array.make 4 v) in
  let acc_arr = Array.make 4 0.0 in
  (match
     eval_ops ops
       [
         (a, Buf_eval.Vbuf (arr 1.0));
         (bv, Buf_eval.Vbuf (arr 10.0));
         (c, Buf_eval.Vbuf (arr 100.0));
         (acc, Buf_eval.Vbuf (Bufview.of_array acc_arr));
       ]
   with
  | [ Buf_eval.Vbuf out ] -> check_float "1 + 10 + 200" 211.0 (Bufview.get out 0)
  | _ -> Alcotest.fail "expected one buffer")

let test_buf_eval_subview_dyn () =
  let m = new_value (Memref ([ 8 ], F32)) in
  let base = new_value Index in
  let sub = Wsc_dialects.Memref_d.subview_dyn m ~offset:base ~size:2 in
  let fill = Wsc_dialects.Linalg_d.fill ~out:(result sub) ~value:7.0 in
  let backing = Array.make 8 0.0 in
  ignore
    (eval_ops
       [ sub; fill; Core.Csl_stencil.yield [] ]
       [ (m, Buf_eval.Vbuf (Bufview.of_array backing)); (base, Buf_eval.Vint 3) ]);
  check_float "outside untouched" 0.0 backing.(2);
  check_float "inside filled" 7.0 backing.(3);
  check_float "inside filled" 7.0 backing.(4);
  check_float "outside untouched" 0.0 backing.(5)

let test_buf_eval_index_arith () =
  let a = Wsc_dialects.Arith.constant_index 5 in
  let b = Wsc_dialects.Arith.constant_index 6 in
  let s = Wsc_dialects.Arith.addi (result a) (result b) in
  match
    eval_ops [ a; b; s; Core.Csl_stencil.yield [ result s ] ] []
  with
  | [ Buf_eval.Vint 11 ] -> ()
  | _ -> Alcotest.fail "expected 11"

let test_buf_eval_unbound () =
  let v = new_value (Memref ([ 2 ], F32)) in
  let op = Wsc_dialects.Linalg_d.fill ~out:v ~value:1.0 in
  match eval_ops [ op ] [] with
  | exception Buf_eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected unbound error"

(* ------------------------------------------------------------------ *)
(* comms library source                                                *)
(* ------------------------------------------------------------------ *)

let test_replace_all () =
  let r = Core.Comms_csl.replace_all ~pattern:"$X" ~by:"east" "$X_$X y $X" in
  Alcotest.(check string) "replace" "east_east y east" r;
  Alcotest.(check string) "no match" "abc"
    (Core.Comms_csl.replace_all ~pattern:"$Z" ~by:"q" "abc");
  Alcotest.(check string) "empty" ""
    (Core.Comms_csl.replace_all ~pattern:"a" ~by:"b" "")

let test_direction_sections_disjoint () =
  let east = Core.Comms_csl.direction_section ~dir:"east" ~opp:"west" in
  let west = Core.Comms_csl.direction_section ~dir:"west" ~opp:"east" in
  check "instantiated" true (east <> west);
  (* no template tokens leak *)
  List.iter
    (fun src ->
      List.iter
        (fun tok ->
          if Core.Comms_csl.replace_all ~pattern:tok ~by:"" src <> src then
            Alcotest.failf "template token %s leaked" tok)
        [ "$DIR"; "$OPP"; "$CDIR" ])
    [ east; west; Core.Comms_csl.source ]

(* ------------------------------------------------------------------ *)
(* csl printer details                                                 *)
(* ------------------------------------------------------------------ *)

let test_printer_float_literals () =
  (* integer-valued coefficients must still print as floats *)
  let prog =
    {
      P.pname = "lit";
      frontend = "test";
      extents = (3, 3, 4);
      halo = 1;
      state = [ "u" ];
      kernels =
        [
          {
            P.kname = "k";
            output = "w";
            expr =
              P.Add
                ( P.Mul (P.Const 2.0, P.Access ("u", [ 1; 0; 0 ])),
                  P.Mul (P.Const 0.125, P.Access ("u", [ -1; 0; 0 ])) );
          };
        ];
      next_state = [ "w" ];
      iterations = 1;
      use_loop = true;
      dsl_loc = 0;
    }
  in
  let compiled = Core.Pipeline.compile (P.compile prog) in
  let files = Core.Csl_printer.print_files compiled in
  let text =
    String.concat "\n"
      (List.map (fun (f : Core.Csl_printer.file) -> f.contents) files)
  in
  (* "2" would be an integer literal in CSL; "2.0" is required *)
  check "no bare int passed to a float builtin" true
    (not
       (let n = String.length text in
        let rec go i =
          i + 5 <= n && (String.sub text i 5 = ", 2);" || go (i + 1))
        in
        go 0))

let test_loc_counts_nonempty_lines () =
  check_int "counts non-empty" 2 (Core.Csl_printer.loc_of "a\n\n  \nb\n");
  check_int "empty string" 0 (Core.Csl_printer.loc_of "")

(* ------------------------------------------------------------------ *)
(* wrapper pass                                                        *)
(* ------------------------------------------------------------------ *)

let test_wrap_requires_applies () =
  let m = Wsc_dialects.Builtin.module_op [] in
  match Core.Wrap.run m with
  | exception Core.Wrap.Wrap_error _ -> ()
  | _ -> Alcotest.fail "expected wrap error"

let test_wrapper_params_roundtrip () =
  let params =
    {
      Core.Csl_wrapper.width = 7;
      height = 9;
      z_dim = 100;
      pattern = 3;
      num_chunks = 2;
      chunk_size = 46;
      program_name = "p";
    }
  in
  let a = Core.Csl_wrapper.params_attr params in
  check "roundtrip" true (Core.Csl_wrapper.params_of_attr a = params)

(* ------------------------------------------------------------------ *)
(* flang lexer / parser edges                                          *)
(* ------------------------------------------------------------------ *)

let flang_of src = Wsc_frontends.Flang_fe.compile ~name:"t" ~extents:(3, 3, 3) src

let test_flang_comments_and_case () =
  let p =
    flang_of
      {|
! a comment line
REAL :: A(0:nx+1, 0:ny+1, 0:nz+1)
Real :: B(0:nx+1, 0:ny+1, 0:nz+1)
DO K = 1, nz   ! trailing comment
  do J = 1, ny
    do I = 1, nx
      b(I,J,K) = 2.5E-1 * a(i,j,k)
    end do
  end do
END DO
|}
  in
  check_int "one kernel" 1 (List.length p.P.kernels);
  (* scientific-notation literal parsed *)
  (match (List.hd p.P.kernels).P.expr with
  | P.Mul (P.Const c, _) -> check_float "0.25" 0.25 c
  | _ -> Alcotest.fail "unexpected expression shape")

let test_flang_negated_term () =
  let p =
    flang_of
      {|
do k = 1, nz
  do j = 1, ny
    do i = 1, nx
      b(i,j,k) = a(i,j,k) - 0.5 * (a(i-1,j,k) + (-1.0) * a(i+1,j,k))
    end do
  end do
end do
|}
  in
  (* value check at one interior point against a direct evaluation *)
  let grids = P.run_reference p in
  ignore grids;
  check_int "kernels" 1 (List.length p.P.kernels)

(* ------------------------------------------------------------------ *)
(* host / fabric edges                                                 *)
(* ------------------------------------------------------------------ *)

let test_host_column_length_check () =
  let p = (B.find "jacobian").make B.Tiny in
  let compiled = Core.Pipeline.compile (P.compile p) in
  let _, program = Core.Pipeline.modules_of compiled in
  (* grid with the wrong z extent *)
  let bad =
    Wsc_dialects.Interp.make_grid
      [ (-1, 5); (-1, 5) ]
      (Tensor ([ 4 ], F32))
  in
  match Wsc_wse.Host.load Machine.wse3 program [ bad ] with
  | exception Wsc_wse.Host.Host_error _ -> ()
  | _ -> Alcotest.fail "expected column-length error"

let test_fabric_deref_unknown_ptr () =
  let p = (B.find "jacobian").make B.Tiny in
  let compiled = Core.Pipeline.compile (P.compile p) in
  let _, program = Core.Pipeline.modules_of compiled in
  let sim = Wsc_wse.Fabric.create Machine.wse3 program in
  match Wsc_wse.Fabric.deref sim.pes.(0).(0) "nope" with
  | exception Wsc_wse.Fabric.Sim_error _ -> ()
  | _ -> Alcotest.fail "expected unknown-pointer error"

(* ------------------------------------------------------------------ *)
(* one-shot reduction structure                                        *)
(* ------------------------------------------------------------------ *)

let test_one_shot_structure () =
  let compile_with one_shot =
    let options = { Core.Pipeline.default_options with one_shot_reduction = one_shot } in
    let p = (B.find "seismic").make B.Tiny in
    snd (Core.Pipeline.modules_of (Core.Pipeline.compile ~options (P.compile p)))
  in
  let count_rcv_buffers program =
    List.length
      (List.filter
         (fun o ->
           o.opname = "csl.global_buffer"
           &&
           let n = string_attr_exn o "sym_name" in
           String.length n >= 3 && String.sub n 0 3 = "rcv")
         (Core.Csl.module_body program))
  in
  (* one-shot: a single shared staging buffer; per-direction otherwise *)
  check_int "one staging buffer" 1 (count_rcv_buffers (compile_with true));
  check_int "four staging buffers" 4 (count_rcv_buffers (compile_with false))

let () =
  Alcotest.run "unit"
    [
      ( "machine",
        [
          Alcotest.test_case "parameters" `Quick test_machine_parameters;
          Alcotest.test_case "bandwidth ordering" `Quick test_machine_bandwidth_ordering;
        ] );
      ( "buf_eval",
        [
          Alcotest.test_case "linalg chain" `Quick test_buf_eval_linalg_chain;
          Alcotest.test_case "dynamic subview" `Quick test_buf_eval_subview_dyn;
          Alcotest.test_case "index arith" `Quick test_buf_eval_index_arith;
          Alcotest.test_case "unbound value" `Quick test_buf_eval_unbound;
        ] );
      ( "comms-source",
        [
          Alcotest.test_case "replace_all" `Quick test_replace_all;
          Alcotest.test_case "direction sections" `Quick
            test_direction_sections_disjoint;
        ] );
      ( "printer",
        [
          Alcotest.test_case "float literals" `Quick test_printer_float_literals;
          Alcotest.test_case "loc counting" `Quick test_loc_counts_nonempty_lines;
        ] );
      ( "wrap",
        [
          Alcotest.test_case "requires applies" `Quick test_wrap_requires_applies;
          Alcotest.test_case "params roundtrip" `Quick test_wrapper_params_roundtrip;
        ] );
      ( "flang-edges",
        [
          Alcotest.test_case "comments and case" `Quick test_flang_comments_and_case;
          Alcotest.test_case "negated term" `Quick test_flang_negated_term;
        ] );
      ( "host-fabric",
        [
          Alcotest.test_case "column length" `Quick test_host_column_length_check;
          Alcotest.test_case "unknown pointer" `Quick test_fabric_deref_unknown_ptr;
        ] );
      ( "one-shot",
        [ Alcotest.test_case "staging buffers" `Quick test_one_shot_structure ] );
    ]
