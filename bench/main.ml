(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6).

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- fig4    -- one experiment
     experiments: fig4 fig5 fig6 fig7 tab1 tflops ablations weak sched
                  par serve perfsmoke trace micro multiwafer mwfaults tune

   Absolute numbers come from the fabric simulator and the calibrated
   machine models (see DESIGN.md); the claims under reproduction are the
   shapes: who wins, by roughly what factor, and where kernels sit
   relative to the rooflines. *)

module B = Wsc_benchmarks.Benchmarks
module P = Wsc_frontends.Stencil_program
module WP = Wsc_perf.Wse_perf
module Machine = Wsc_wse.Machine
module F = Wsc_wse.Fabric

let header title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n"

(* ------------------------------------------------------------------ *)
(* Figure 4: WSE2 vs WSE3 across benchmarks, large problem size        *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  header
    "Figure 4: WSE2 vs WSE3 performance, large problem size (GPts/s)\n\
     paper shape: WSE3 > WSE2 on every benchmark, via upgraded switching";
  Printf.printf "%-10s %12s %12s %8s\n" "benchmark" "WSE2 GPts/s" "WSE3 GPts/s"
    "WSE3/WSE2";
  List.iter
    (fun id ->
      let d = B.find id in
      let m2 = WP.measure ~machine:Machine.wse2 ~size:B.Large d in
      let m3 = WP.measure ~machine:Machine.wse3 ~size:B.Large d in
      Printf.printf "%-10s %12.0f %12.0f %7.2fx\n" id m2.gpts_per_s m3.gpts_per_s
        (m3.gpts_per_s /. m2.gpts_per_s))
    [ "jacobian"; "diffusion"; "seismic"; "uvkbe" ]

(* ------------------------------------------------------------------ *)
(* Figure 5: seismic -- hand-written vs generated across problem sizes *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  header
    "Figure 5: 25-pt seismic, hand-written (WSE2) vs our approach (WSE2, WSE3)\n\
     paper shape: generated code beats hand-written by up to ~8% on WSE2;\n\
     WSE3 code outperforms WSE2 by up to ~38%";
  Printf.printf "%-8s %16s %14s %14s %10s %10s\n" "size" "hand-written" "ours WSE2"
    "ours WSE3" "ours/hand" "WSE3/WSE2";
  List.iter
    (fun size ->
      let d = B.find "seismic" in
      let hw = Wsc_perf.Handwritten.hand_written_gpts ~size in
      let m2 = WP.measure ~machine:Machine.wse2 ~size d in
      let m3 = WP.measure ~machine:Machine.wse3 ~size d in
      Printf.printf "%-8s %16.0f %14.0f %14.0f %9.1f%% %9.1f%%\n"
        (B.size_to_string size) hw m2.gpts_per_s m3.gpts_per_s
        (100.0 *. ((m2.gpts_per_s /. hw) -. 1.0))
        (100.0 *. ((m3.gpts_per_s /. m2.gpts_per_s) -. 1.0)))
    [ B.Small; B.Medium; B.Large ]

(* ------------------------------------------------------------------ *)
(* Figure 6: acoustic -- WSE3 vs 128 A100s vs 128 ARCHER2 nodes        *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  header
    "Figure 6: Devito acoustic throughput, WSE3 vs GPU/CPU clusters (GPts/s)\n\
     paper shape: WSE3 ~14x faster than 128 A100s, ~20x than 128 CPU nodes";
  let d = B.find "acoustic" in
  let wse3 = WP.measure ~machine:Machine.wse3 ~size:B.Large d in
  let gpu = Wsc_perf.Cluster.tursa_128_a100 () in
  let cpu = Wsc_perf.Cluster.archer2_128_nodes () in
  Printf.printf "%-24s %12s %10s\n" "system" "GPts/s" "WSE3 adv.";
  Printf.printf "%-24s %12.0f %10s\n" "WSE3 (750x994x604)" wse3.gpts_per_s "1.0x";
  Printf.printf "%-24s %12.1f %9.1fx\n" (gpu.cm_name ^ " (1158^3)") gpu.gpts_per_s
    (wse3.gpts_per_s /. gpu.gpts_per_s);
  Printf.printf "%-24s %12.1f %9.1fx\n" (cpu.cm_name ^ " (1024^3)") cpu.gpts_per_s
    (wse3.gpts_per_s /. cpu.gpts_per_s)

(* ------------------------------------------------------------------ *)
(* Figure 7: roofline on the WSE3 + acoustic on a single A100          *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header
    "Figure 7: roofline, five benchmarks on the WSE3 (+ acoustic on one A100)\n\
     paper shape: all WSE kernels compute-bound from memory; all but the\n\
     Jacobian also compute-bound via fabric; the A100 point is memory-bound";
  let nx, ny = B.xy_extents B.Large in
  let roof = Wsc_perf.Roofline.wse_roof Machine.wse3 ~pes:(nx * ny) in
  Printf.printf
    "machine: %s  peak=%.0f TFLOP/s  mem BW=%.1f PB/s  fabric BW=%.1f PB/s\n"
    roof.machine_name (roof.peak_gflops /. 1e3) (roof.mem_bw_gbytes /. 1e6)
    (roof.fabric_bw_gbytes /. 1e6);
  List.iter
    (fun (d : B.descr) ->
      let m = WP.measure ~machine:Machine.wse3 ~size:B.Large d in
      List.iter
        (fun p -> Format.printf "  %a@." Wsc_perf.Roofline.pp_point p)
        (Wsc_perf.Roofline.points_of_measurement roof m))
    B.all;
  Format.printf "  %a  (roof: peak %.0f GFLOP/s, HBM %.0f GB/s)@."
    Wsc_perf.Roofline.pp_point
    (Wsc_perf.Roofline.a100_point ())
    Wsc_perf.Roofline.a100_roof.peak_gflops
    Wsc_perf.Roofline.a100_roof.mem_bw_gbytes

(* ------------------------------------------------------------------ *)
(* Table 1: lines of code                                              *)
(* ------------------------------------------------------------------ *)

let tab1 () =
  header
    "Table 1: lines of code -- generated CSL vs DSL source\n\
     paper shape: the DSL source is an order of magnitude smaller than\n\
     the CSL a programmer would otherwise write";
  Printf.printf "%-10s %18s %14s %18s\n" "benchmark" "CSL kernel (LoC)" "CSL entire"
    "DSL & ours (LoC)";
  List.iter
    (fun (d : B.descr) ->
      let p = d.make B.Tiny in
      let m = Wsc_core.Pipeline.compile (P.compile p) in
      let files = Wsc_core.Csl_printer.print_files m in
      let kernel =
        match
          List.find_opt
            (fun (f : Wsc_core.Csl_printer.file) ->
              f.filename = "stencil_program.csl")
            files
        with
        | Some f -> Wsc_core.Csl_printer.loc_of f.contents
        | None -> 0
      in
      let entire =
        List.fold_left
          (fun acc (f : Wsc_core.Csl_printer.file) ->
            acc + Wsc_core.Csl_printer.loc_of f.contents)
          0 files
      in
      Printf.printf "%-10s %18d %14d %18d\n" d.id kernel entire p.P.dsl_loc)
    B.all

(* ------------------------------------------------------------------ *)
(* Section 7 comparison: absolute TFLOP/s                              *)
(* ------------------------------------------------------------------ *)

let tflops () =
  header
    "Section 7 comparison numbers: TFLOP/s on CS-2 and CS-3\n\
     paper: jacobian 169 / 313; seismic 491 / 678 (CS-2 / CS-3)";
  Printf.printf "%-10s %12s %12s\n" "benchmark" "CS-2 TFLOPs" "CS-3 TFLOPs";
  List.iter
    (fun id ->
      let d = B.find id in
      let m2 = WP.measure ~machine:Machine.wse2 ~size:B.Large d in
      let m3 = WP.measure ~machine:Machine.wse3 ~size:B.Large d in
      Printf.printf "%-10s %12.0f %12.0f\n" id m2.tflops m3.tflops)
    [ "jacobian"; "seismic" ]

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices (DESIGN.md)                         *)
(* ------------------------------------------------------------------ *)

let ablations () =
  header
    "Ablations: effect of the Section 5.7 optimizations (WSE3, large,\n\
     per-iteration cycles; lower is better)";
  let run id opts label =
    let d = B.find id in
    let m = WP.measure ~pipeline_options:opts ~machine:Machine.wse3 ~size:B.Large d in
    Printf.printf "  %-10s %-28s %10.0f cyc/it  %8.0f GPts/s\n" id label
      m.cycles_per_iter m.gpts_per_s
  in
  let base = Wsc_core.Pipeline.default_options in
  List.iter
    (fun id ->
      run id base "baseline (all opts)";
      run id
        { base with Wsc_core.Pipeline.promote_coefficients = false }
        "no coefficient promotion";
      run id
        { base with Wsc_core.Pipeline.one_shot_reduction = false }
        "no one-shot reduction";
      run id
        { base with Wsc_core.Pipeline.fuse_fmac = false }
        "fmac via standalone pass";
      run id
        { base with Wsc_core.Pipeline.fuse_fmac = false; fuse_fmac_pass = false }
        "no fmac fusion at all";
      run id
        { base with Wsc_core.Pipeline.num_chunks_override = Some 2 }
        "forced 2 chunks";
      match id with
      | "uvkbe" ->
          run id
            { base with Wsc_core.Pipeline.inline_stencils = false }
            "no stencil inlining"
      | _ -> ())
    [ "seismic"; "acoustic"; "uvkbe" ]

(* ------------------------------------------------------------------ *)
(* Weak scaling (paper SS6.2 discussion)                               *)
(* ------------------------------------------------------------------ *)

let weak () =
  header
    "Weak scaling: acoustic with per-device grids grown so each GPU/CPU\n\
     works at its preferred size (paper SS6.2: 'a weak-scaling comparison\n\
     would likely reduce the WSE3's speedup, [but] the advantage would\n\
     remain significant')";
  let d = B.find "acoustic" in
  let wse3 = WP.measure ~machine:Machine.wse3 ~size:B.Large d in
  Printf.printf "%-34s %12s %10s\n" "system" "GPts/s" "WSE3 adv.";
  Printf.printf "%-34s %12.0f %10s\n" "WSE3 (750x994x604)" wse3.gpts_per_s "1.0x";
  List.iter
    (fun n ->
      let gpu = Wsc_perf.Cluster.acoustic_throughput Wsc_perf.Cluster.a100 ~devices:128 ~n in
      Printf.printf "%-34s %12.1f %9.1fx\n"
        (Printf.sprintf "128x A100 (%d^3, weak-scaled)" n)
        gpu.gpts_per_s
        (wse3.gpts_per_s /. gpu.gpts_per_s))
    [ 1158; 1600; 2048 ];
  List.iter
    (fun n ->
      let cpu =
        Wsc_perf.Cluster.acoustic_throughput Wsc_perf.Cluster.archer2_node ~devices:128 ~n
      in
      Printf.printf "%-34s %12.1f %9.1fx\n"
        (Printf.sprintf "128x ARCHER2 (%d^3, weak-scaled)" n)
        cpu.gpts_per_s
        (wse3.gpts_per_s /. cpu.gpts_per_s))
    [ 1024; 1448; 2048 ]

(* ------------------------------------------------------------------ *)
(* Scheduler microbenchmark: polling vs event-driven fabric driver     *)
(* ------------------------------------------------------------------ *)

let sched () =
  header
    "Scheduler: polling vs event-driven fabric driver, seed benchmarks at\n\
     Large size (proxy-grid runs with the real z extent, as used by every\n\
     Large measurement).  Bit-identity of elapsed cycles and aggregate\n\
     stats is checked on every benchmark.";
  let extent = 16 and iters = 8 in
  Printf.printf "proxy grid %dx%d PEs, %d timesteps, WSE3\n" extent extent iters;
  Printf.printf
    "(PE scans = step visits; probes = finished-flag sweeps the polling\n\
    \ loop repeats every round; total = scans + probes)\n\n";
  Printf.printf "%-10s %-8s %8s %8s %8s %8s %6s %8s %10s %9s\n" "benchmark"
    "driver" "scans" "probes" "total" "wakeups" "qmax" "wall ms" "cycles"
    "identical";
  let mismatches = ref 0 in
  List.iter
    (fun (d : B.descr) ->
      let run driver =
        let t0 = Sys.time () in
        let h, _ = WP.simulate_proxy ~driver ~extent d ~machine:Machine.wse3 ~iters in
        let wall_ms = (Sys.time () -. t0) *. 1e3 in
        (F.elapsed_cycles h.sim, F.total_stats h.sim, F.sched_stats h.sim, wall_ms)
      in
      let cp, sp, kp, wp_ms = run F.Polling in
      let ce, se, ke, we_ms = run F.Event_driven in
      let identical = cp = ce && F.stats_equal sp se in
      if not identical then incr mismatches;
      let totp = kp.F.Sched.scans + kp.F.Sched.probes in
      let tote = ke.F.Sched.scans + ke.F.Sched.probes in
      Printf.printf "%-10s %-8s %8d %8d %8d %8s %6s %8.1f %10.0f %9s\n" d.id
        "polling" kp.F.Sched.scans kp.F.Sched.probes totp "-" "-" wp_ms cp "";
      Printf.printf "%-10s %-8s %8d %8d %8d %8d %6d %8.1f %10.0f %9s\n" ""
        "event" ke.F.Sched.scans ke.F.Sched.probes tote ke.F.Sched.wakeups
        ke.F.Sched.max_queue_depth we_ms ce
        (if identical then "yes" else "NO");
      Printf.printf "%-10s polls avoided: %d (%.2fx fewer PE visits)\n\n" ""
        (totp - tote)
        (float_of_int totp /. float_of_int (max 1 tote)))
    B.all;
  if !mismatches = 0 then
    Printf.printf "all benchmarks: elapsed cycles and total stats bit-identical\n"
  else begin
    Printf.printf "MISMATCH on %d benchmark(s)\n" !mismatches;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Parallel driver: domain-decomposed event-driven simulation          *)
(* ------------------------------------------------------------------ *)

(** Elapsed wall-clock of [f], via [Unix.gettimeofday] — [Sys.time] is
    CPU time summed over domains, which would hide any speedup. *)
let wall (f : unit -> 'a) : 'a * float =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(** Exact equality of the drained state grids of two finished runs. *)
let grids_equal (a : Wsc_dialects.Interp.grid list)
    (b : Wsc_dialects.Interp.grid list) : bool =
  List.length a = List.length b
  && List.for_all2
       (fun (ga : Wsc_dialects.Interp.grid) (gb : Wsc_dialects.Interp.grid) ->
         Array.length ga.gdata = Array.length gb.gdata
         && (let ok = ref true in
             Array.iteri
               (fun i v ->
                 if not (Int64.equal (Int64.bits_of_float v)
                           (Int64.bits_of_float gb.gdata.(i)))
                 then ok := false)
               ga.gdata;
             !ok))
       a b

let par () =
  header
    "Parallel driver: domain-decomposed discrete-event simulation\n\
     bit-identity of elapsed cycles, aggregate stats and drained fields\n\
     is asserted against the event driver on every run; speedup is wall\n\
     clock, and its verdict is only counted on legs with domains <= cores";
  let module J = Wsc_trace.Json in
  let machine = Machine.wse3 in
  let iters = 8 in
  let cores = Domain.recommended_domain_count () in
  let mismatches = ref 0 in
  let rows = ref [] in
  Printf.printf "%d core(s) available (Domain.recommended_domain_count)\n" cores;
  if cores < 2 then
    Printf.printf
      "WARNING: single-core host — every multi-domain leg below is\n\
       oversubscribed; wall-clock ratios measure scheduling overhead, not\n\
       parallel speedup, and their verdicts are skipped (marked n/a)\n";
  Printf.printf "\n%-10s %6s %-9s %7s %5s %9s %12s %8s %9s\n" "benchmark"
    "extent" "driver" "domains" "cores" "wall s" "cycles" "speedup" "identical";
  List.iter
    (fun id ->
      let d = B.find id in
      List.iter
        (fun extent ->
          let (h0, _), w0 =
            wall (fun () ->
                WP.simulate_proxy ~driver:F.Event_driven ~extent d ~machine
                  ~iters)
          in
          let c0 = F.elapsed_cycles h0.sim in
          let s0 = F.total_stats h0.sim in
          let g0 = Wsc_wse.Host.read_all h0 in
          (* one leg of the table + one JSON row.  [cores] rides along on
             every leg, and any leg with more domains than cores carries
             an explicit oversubscription flag and no speedup verdict —
             its wall-clock ratio is still recorded, but marked
             meaningless *)
          let row driver domains wall_s cycles identical =
            let oversubscribed = domains > cores in
            let speedup = w0 /. wall_s in
            Printf.printf "%-10s %6d %-9s %7d %5d %9.3f %12.0f %8s %9s\n" id
              extent driver domains cores wall_s cycles
              (if oversubscribed then Printf.sprintf "(%.2fx)" speedup
               else Printf.sprintf "%.2fx" speedup)
              (if identical then "yes" else "NO");
            if oversubscribed then
              Printf.printf
                "    note: %d domains > %d cores — oversubscribed, speedup \
                 verdict skipped\n"
                domains cores;
            rows :=
              J.Obj
                [
                  ("benchmark", J.String id);
                  ("extent", J.Int extent);
                  ("driver", J.String driver);
                  ("domains", J.Int domains);
                  ("cores", J.Int cores);
                  ("oversubscribed", J.Bool oversubscribed);
                  ("wall_s", J.Float wall_s);
                  ("cycles", J.Float cycles);
                  ("speedup", J.Float speedup);
                  ("speedup_meaningful", J.Bool (not oversubscribed));
                  ("identical", J.Bool identical);
                ]
              :: !rows
          in
          row "event" 0 w0 c0 true;
          List.iter
            (fun n ->
              let (h, _), w =
                wall (fun () ->
                    WP.simulate_proxy ~driver:(F.Parallel n) ~extent d ~machine
                      ~iters)
              in
              let c = F.elapsed_cycles h.sim in
              let sdiff = F.stats_diff s0 (F.total_stats h.sim) in
              let fields_ok = grids_equal g0 (Wsc_wse.Host.read_all h) in
              let identical = c = c0 && sdiff = None && fields_ok in
              if not identical then begin
                incr mismatches;
                if c <> c0 then
                  Printf.printf "    cycles: %.17g <> %.17g\n" c0 c;
                (match sdiff with
                | Some m -> Printf.printf "    stats: %s\n" m
                | None -> ());
                if not fields_ok then
                  Printf.printf "    drained fields differ\n"
              end;
              let eff = F.effective_domains (F.Parallel n) ~width:h.sim.width in
              row "parallel" eff w c identical)
            [ 1; 2; 4 ])
        [ 8; 16; 32 ])
    [ "jacobian"; "seismic" ];
  let doc =
    J.summary ~tool:"bench-par"
      ~config:
        [
          ("machine", J.String machine.Machine.name);
          ("iterations", J.Int iters);
          ("cores", J.Int cores);
        ]
      ~results:(List.rev !rows)
  in
  let oc = open_out "BENCH_PR6.json" in
  J.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote BENCH_PR6.json\n";
  if !mismatches = 0 then
    Printf.printf
      "all runs: cycles, aggregate stats and drained fields bit-identical\n"
  else begin
    Printf.printf "MISMATCH on %d run(s)\n" !mismatches;
    exit 1
  end

(** CI perf gate: the 2-domain extent-32 jacobian must not be slower
    than the sequential event driver when the runner actually has 2
    cores to run it on; on a single-core runner the verdict is skipped
    (the run still checks bit-identity).  Exits non-zero on a perf
    regression or any identity mismatch. *)
let perfsmoke () =
  header
    "Perf smoke: parallel (2 domains) vs event driver, jacobian extent 32\n\
     fails if parallel wall-clock < 1.0x event on a multi-core runner";
  let machine = Machine.wse3 in
  let iters = 8 and extent = 32 in
  let cores = Domain.recommended_domain_count () in
  let d = B.find "jacobian" in
  let (h0, _), w0 =
    wall (fun () ->
        WP.simulate_proxy ~driver:F.Event_driven ~extent d ~machine ~iters)
  in
  let (h1, _), w1 =
    wall (fun () ->
        WP.simulate_proxy ~driver:(F.Parallel 2) ~extent d ~machine ~iters)
  in
  let c0 = F.elapsed_cycles h0.sim and c1 = F.elapsed_cycles h1.sim in
  let sdiff = F.stats_diff (F.total_stats h0.sim) (F.total_stats h1.sim) in
  let fields_ok =
    grids_equal (Wsc_wse.Host.read_all h0) (Wsc_wse.Host.read_all h1)
  in
  let speedup = w0 /. w1 in
  Printf.printf "event    %9.3f s\nparallel %9.3f s  (%d domains, %d cores)\n"
    w0 w1 2 cores;
  Printf.printf "speedup  %9.2fx\n" speedup;
  if c0 <> c1 || sdiff <> None || not fields_ok then begin
    Printf.printf "FAIL: parallel run not bit-identical to event driver\n";
    (match sdiff with Some m -> Printf.printf "  stats: %s\n" m | None -> ());
    exit 1
  end;
  if cores < 2 then
    Printf.printf
      "SKIP verdict: only %d core(s) — 2 domains oversubscribed, wall-clock \
       ratio not meaningful\n"
      cores
  else if speedup < 1.0 then begin
    Printf.printf
      "FAIL: parallel driver slower than the event driver (%.2fx) on a \
       %d-core runner\n"
      speedup cores;
    exit 1
  end
  else Printf.printf "PASS: parallel >= 1.0x event on %d cores\n" cores

(* ------------------------------------------------------------------ *)
(* Compile service: throughput and cache hit-rate (BENCH_PR7.json)     *)
(* ------------------------------------------------------------------ *)

(** The serve-engine benchmark: a fuzzer corpus (pure in (seed, index),
    so the stream is reproducible) compiled cold and then warm on the
    same engine at 1/2/4 worker domains.  Two invariants are enforced,
    not just measured: every warm response must be a cache hit whose
    rendered payload is byte-identical to the cold compile of the same
    source, and warm throughput must beat cold throughput.  The
    wall-clock speedup across domain counts carries the same
    oversubscription honesty as the [par] experiment: legs with more
    domains than cores get no verdict. *)
let serve_bench () =
  header
    "Compile service: cold vs warm throughput over a fuzzer corpus at\n\
     1/2/4 worker domains; warm responses must be cache hits, byte-\n\
     identical to the cold compiles, and faster in aggregate";
  let module S = Wsc_serve in
  let module J = Wsc_trace.Json in
  let seed = 42 and unique = 50 and repeats = 25 in
  let sources =
    Array.init unique (fun index ->
        Wsc_harden.Corpus.case_contents ~seed ~index)
  in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "corpus: %d unique programs (seed %d) + %d repeats; %d core(s) available\n\n"
    unique seed repeats cores;
  if cores < 2 then
    Printf.printf
      "WARNING: single-core host — multi-domain legs are oversubscribed;\n\
       their wall-clock ratios measure scheduling overhead, not speedup\n\n";
  Printf.printf "%-8s %6s %10s %10s %10s %10s %9s %10s\n" "domains" "cores"
    "cold s" "cold/s" "warm s" "warm/s" "hit-rate" "identical";
  let failures = ref 0 in
  let rows = ref [] in
  List.iter
    (fun domains ->
      let engine = S.Engine.create () in
      (* one stream = one pool lifetime (pool-per-leg, never
         pool-per-request); responses land in slots so payloads can be
         compared across streams by corpus index *)
      let run_stream (idxs : int array) : string option array * float =
        let payloads = Array.make (Array.length idxs) None in
        let pool =
          S.Pool.create ~domains (fun _wi (slot, src) ->
              let r = S.Engine.compile_source engine src in
              payloads.(slot) <-
                S.Protocol.response_payload
                  (S.Protocol.compile_response ~id:slot r))
        in
        let (), wall_s =
          wall (fun () ->
              Array.iteri
                (fun slot i -> ignore (S.Pool.submit pool (slot, sources.(i))))
                idxs;
              S.Pool.drain pool)
        in
        S.Pool.shutdown pool;
        (* every request must have produced an ok payload (the fuzzer
           only emits well-formed programs) *)
        Array.iteri
          (fun slot x ->
            if x = None then begin
              incr failures;
              Printf.printf "  FAIL: request %d produced no ok payload\n" slot
            end)
          payloads;
        (payloads, wall_s)
      in
      let cold_idxs = Array.init unique (fun i -> i) in
      let warm_idxs =
        Array.init (unique + repeats) (fun i ->
            if i < unique then i else (i - unique) mod unique)
      in
      let cold, cold_s = run_stream cold_idxs in
      let stats_after_cold = S.Engine.cache_stats engine in
      let warm, warm_s = run_stream warm_idxs in
      let stats = S.Engine.cache_stats engine in
      let warm_hits = stats.S.Cache.hits - stats_after_cold.S.Cache.hits in
      let identical =
        Array.for_all
          (fun ok -> ok)
          (Array.mapi
             (fun slot i ->
               match (warm.(slot), cold.(i)) with
               | Some w, Some c -> w = c
               | _ -> false)
             warm_idxs)
      in
      let all_warm_hit = warm_hits = Array.length warm_idxs in
      let cold_per_s = float_of_int unique /. cold_s in
      let warm_per_s = float_of_int (Array.length warm_idxs) /. warm_s in
      if not identical then begin
        incr failures;
        Printf.printf
          "  FAIL: warm payloads not byte-identical to cold (domains=%d)\n"
          domains
      end;
      if not all_warm_hit then begin
        incr failures;
        Printf.printf "  FAIL: only %d/%d warm requests hit the cache\n"
          warm_hits (Array.length warm_idxs)
      end;
      if warm_per_s <= cold_per_s then begin
        incr failures;
        Printf.printf
          "  FAIL: warm throughput (%.1f/s) did not beat cold (%.1f/s)\n"
          warm_per_s cold_per_s
      end;
      Printf.printf "%-8d %6d %10.3f %10.1f %10.3f %10.1f %8.1f%% %10s\n"
        domains cores cold_s cold_per_s warm_s warm_per_s
        (100.0 *. S.Cache.hit_rate stats)
        (if identical && all_warm_hit then "yes" else "NO");
      rows :=
        J.Obj
          [
            ("domains", J.Int domains);
            ("cores", J.Int cores);
            ("oversubscribed", J.Bool (domains > cores));
            ("cold_wall_s", J.Float cold_s);
            ("cold_compiles_per_s", J.Float cold_per_s);
            ("warm_wall_s", J.Float warm_s);
            ("warm_compiles_per_s", J.Float warm_per_s);
            ("warm_over_cold", J.Float (warm_per_s /. cold_per_s));
            ("speedup_meaningful", J.Bool (domains <= cores));
            ("hits", J.Int stats.S.Cache.hits);
            ("misses", J.Int stats.S.Cache.misses);
            ("evictions", J.Int stats.S.Cache.evictions);
            ("hit_rate", J.Float (S.Cache.hit_rate stats));
            ("all_warm_hits", J.Bool all_warm_hit);
            ("byte_identical", J.Bool identical);
          ]
        :: !rows)
    [ 1; 2; 4 ];
  let doc =
    J.summary ~tool:"bench-serve"
      ~config:
        [
          ("seed", J.Int seed);
          ("unique_programs", J.Int unique);
          ("repeats", J.Int repeats);
          ("cores", J.Int cores);
        ]
      ~results:(List.rev !rows)
  in
  let oc = open_out "BENCH_PR7.json" in
  J.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote BENCH_PR7.json\n";
  if !failures = 0 then
    Printf.printf
      "all legs: warm responses are cache hits, byte-identical to cold, \
       and faster\n"
  else begin
    Printf.printf "FAILED %d check(s)\n" !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Tracing: collector overhead + simulated-vs-analytic deviation       *)
(* ------------------------------------------------------------------ *)

let trace_exp () =
  header
    "Tracing: event volume and collector overhead per benchmark (Tiny,\n\
     both machines), with the simulated-vs-analytic deviation.  Elapsed\n\
     cycles and aggregate stats must be bit-identical with tracing on\n\
     and off.";
  let module T = Wsc_trace.Trace in
  let module I = Wsc_dialects.Interp in
  Printf.printf "%-10s %-5s %8s %10s %10s %9s  %s\n" "benchmark" "mach" "events"
    "plain ms" "traced ms" "cycles" "deviation";
  let mismatches = ref 0 in
  List.iter
    (fun (d : B.descr) ->
      List.iter
        (fun (machine : Machine.t) ->
          let p = d.make B.Tiny in
          let remarks = ref [] in
          let pass_options =
            {
              Wsc_ir.Pass.default_options with
              on_remark = Some (Wsc_trace.Remarks.collect remarks);
            }
          in
          let m = Wsc_core.Pipeline.compile ~pass_options (P.compile p) in
          let init () =
            let ft = P.field_type p in
            List.map
              (fun _ ->
                let g3 = I.grid_of_typ ft in
                I.init_grid g3;
                I.retensorize_grid g3)
              p.P.state
          in
          let time f =
            let t0 = Sys.time () in
            let r = f () in
            (r, (Sys.time () -. t0) *. 1e3)
          in
          let h_plain, plain_ms =
            time (fun () -> Wsc_wse.Host.simulate machine m (init ()))
          in
          let sink = T.collector () in
          let h_traced, traced_ms =
            time (fun () -> Wsc_wse.Host.simulate ~trace:sink machine m (init ()))
          in
          Wsc_trace.Remarks.emit sink !remarks;
          let cp = F.elapsed_cycles h_plain.sim
          and ct = F.elapsed_cycles h_traced.sim in
          let identical =
            cp = ct
            && F.stats_equal (F.total_stats h_plain.sim) (F.total_stats h_traced.sim)
          in
          if not identical then incr mismatches;
          let predicted =
            WP.predict_cycles d ~machine ~size:B.Tiny ~iterations:p.P.iterations
          in
          let dev =
            Wsc_trace.Aggregate.deviation ~bench:d.id ~machine:machine.name
              ~simulated_cycles:ct ~predicted_cycles:predicted
          in
          Printf.printf "%-10s %-5s %8d %10.2f %10.2f %9.0f  %+5.1f%%%s\n" d.id
            machine.name (T.event_count sink) plain_ms traced_ms ct dev.dv_pct
            (if identical then "" else "  NOT BIT-IDENTICAL"))
        [ Machine.wse2; Machine.wse3 ])
    B.all;
  if !mismatches = 0 then
    Printf.printf "\nall benchmarks: traced runs bit-identical to untraced runs\n"
  else begin
    Printf.printf "\nTRACING CHANGED RESULTS on %d run(s)\n" !mismatches;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the compiler itself                    *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Compiler micro-benchmarks (Bechamel): full pipeline compile time";
  let open Bechamel in
  let tests =
    List.map
      (fun (d : B.descr) ->
        Test.make ~name:d.id
          (Staged.stage (fun () ->
               let p = d.make B.Tiny in
               ignore (Wsc_core.Pipeline.compile (P.compile p)))))
      B.all
  in
  let test = Test.make_grouped ~name:"pipeline" ~fmt:"%s %s" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let tbl = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ t ] -> Printf.printf "  %-30s %12.2f ms/compile\n" name (t /. 1e6)
      | _ -> ())
    tbl

(* ------------------------------------------------------------------ *)
(* Machine-readable summary: the perf trajectory (BENCH_*.json)        *)
(* ------------------------------------------------------------------ *)

(** One proxy-grid simulation per benchmark per driver, dumped with its
    wall time and scheduler counters so successive PRs can diff the perf
    trajectory mechanically instead of scraping the tables above. *)
let json_summary (path : string) : unit =
  let module J = Wsc_trace.Json in
  let extent = 16 and iters = 8 in
  let machine = Machine.wse3 in
  let entry (d : B.descr) driver : J.t =
    let (h, chunks), wall_s =
      wall (fun () -> WP.simulate_proxy ~driver ~extent d ~machine ~iters)
    in
    let k = F.sched_stats h.sim in
    let st = F.total_stats h.sim in
    J.Obj
      [
        ("benchmark", J.String d.id);
        ("driver", J.String (F.driver_name driver));
        ("domains", J.Int (F.effective_domains driver ~width:h.sim.width));
        ("cycles", J.Float (F.elapsed_cycles h.sim));
        ("wall_s", J.Float wall_s);
        ("chunks", J.Int chunks);
        ("flops", J.Float st.flops);
        ("elems_sent", J.Int st.elems_sent);
        ("task_activations", J.Int st.task_activations);
        ( "scheduler",
          J.Obj
            [
              ("scans", J.Int k.F.Sched.scans);
              ("probes", J.Int k.F.Sched.probes);
              ("wakeups", J.Int k.F.Sched.wakeups);
              ("parks", J.Int k.F.Sched.parks);
              ("max_queue_depth", J.Int k.F.Sched.max_queue_depth);
            ] );
      ]
  in
  let doc =
    (* shared --json envelope, same shape as wsc faults / wsc fuzz *)
    J.summary ~tool:"bench"
      ~config:
        [
          ("machine", J.String machine.Machine.name);
          ("proxy_extent", J.Int extent);
          ("iterations", J.Int iters);
        ]
      ~results:
        (List.concat_map
           (fun d ->
             [ entry d F.Polling; entry d F.Event_driven; entry d (F.Parallel 2) ])
           B.all)
  in
  let oc = open_out path in
  J.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Multi-wafer scale-out: bit-identity validation + scaling (PR 8)     *)
(* ------------------------------------------------------------------ *)

(** Two halves, one JSON file (BENCH_PR8.json).  Validation: every
    paper benchmark co-simulated over 2×1 and 2×2 wafer grids at Tiny
    through one shared compile engine, drained fields asserted
    bit-identical to the undecomposed single-wafer run (exit 1 on any
    mismatch).  Scaling: the strong/weak figures of an N-wafer WSE3
    against the Tursa-A100 and ARCHER2 cluster models, per-wafer
    compute from the simulator-measured steady-state cycles per
    iteration.  Wall-clock ratios follow the PR 6 honesty rules: cores
    ride along on every row, and a leg running more worker domains
    than cores is flagged oversubscribed — its ratio is recorded but
    carries no verdict. *)
let multiwafer () =
  header
    "Multi-wafer scale-out: decompose, compile per slice through the\n\
     shared engine cache, co-simulate one domain per wafer; drained\n\
     fields must be bit-identical to the single-wafer simulation";
  let module J = Wsc_trace.Json in
  let module MW = Wsc_multiwafer.Cosim in
  let module SC = Wsc_multiwafer.Scaling in
  let module Cache = Wsc_serve.Cache in
  let machine = Machine.wse3 in
  let cores = Domain.recommended_domain_count () in
  let mismatches = ref 0 in
  let rows = ref [] in
  Printf.printf "%d core(s) available (Domain.recommended_domain_count)\n" cores;
  if cores < 2 then
    Printf.printf
      "WARNING: single-core host — every multi-wafer leg below is\n\
       oversubscribed; wall-clock ratios measure scheduling overhead, not\n\
       parallel speedup, and their verdicts are skipped\n";
  Printf.printf "\n%-10s %6s %7s %5s %9s %9s %12s %5s %5s %9s\n" "benchmark"
    "wafers" "domains" "cores" "wall s" "1-waf s" "device cyc" "hit" "dedup"
    "identical";
  (* one engine across every leg: the second wafer grid of a benchmark
     re-submits slice programs the first already compiled, so the cache
     columns also demonstrate cross-run reuse *)
  let engine = Wsc_serve.Engine.create () in
  List.iter
    (fun (d : B.descr) ->
      let p = d.make B.Tiny in
      let refs, w0 = wall (fun () -> MW.reference ~machine p) in
      List.iter
        (fun (wx, wy) ->
          let s0 = Wsc_serve.Engine.cache_stats engine in
          let r, w =
            wall (fun () -> MW.run ~engine ~machine ~wafers:(wx, wy) p)
          in
          let s1 = r.MW.cache in
          let hits = s1.Cache.hits - s0.Cache.hits in
          let dedup = s1.Cache.dedup_hits - s0.Cache.dedup_hits in
          let misses = s1.Cache.misses - s0.Cache.misses in
          let identical = MW.grids_bit_identical refs r.MW.grids in
          if not identical then begin
            incr mismatches;
            Printf.printf "    drained fields differ from the single wafer\n"
          end;
          let domains = wx * wy in
          let oversubscribed = domains > cores in
          let speedup = w0 /. w in
          Printf.printf "%-10s %6s %7d %5d %9.3f %9.3f %12.0f %5d %5d %9s\n"
            d.id
            (Printf.sprintf "%dx%d" wx wy)
            domains cores w w0 r.MW.device_cycles hits dedup
            (if identical then "yes" else "NO");
          if oversubscribed then
            Printf.printf
              "    note: %d domains > %d cores — oversubscribed, wall ratio \
               (%.2fx) recorded without verdict\n"
              domains cores speedup;
          rows :=
            J.Obj
              [
                ("kind", J.String "validation");
                ("benchmark", J.String d.id);
                ("wafers", J.String (Printf.sprintf "%dx%d" wx wy));
                ("domains", J.Int domains);
                ("cores", J.Int cores);
                ("oversubscribed", J.Bool oversubscribed);
                ("wall_s", J.Float w);
                ("single_wafer_wall_s", J.Float w0);
                ("speedup", J.Float speedup);
                ("speedup_meaningful", J.Bool (not oversubscribed));
                ("epochs", J.Int r.MW.epochs);
                ("distinct_programs", J.Int r.MW.distinct_programs);
                ("device_cycles", J.Float r.MW.device_cycles);
                ("interconnect_s", J.Float r.MW.interconnect_s);
                ("exchange_bytes", J.Int r.MW.exchange_bytes);
                ("cache_hits", J.Int hits);
                ("cache_dedup_hits", J.Int dedup);
                ("cache_misses", J.Int misses);
                ("identical", J.Bool identical);
              ]
            :: !rows)
        [ (2, 1); (2, 2) ])
    B.all;
  (* scaling figures: strong + weak per benchmark, modeled from the
     measured per-PE steady state (extent-independent: SPMD) *)
  let figures = ref [] in
  List.iter
    (fun (d : B.descr) ->
      let m = WP.measure ~machine ~size:(B.Proxy (8, 8)) d in
      let cpi = m.WP.cycles_per_iter in
      List.iter
        (fun (fig : SC.figure) ->
          let mode =
            match fig.SC.mode with `Strong -> "strong" | `Weak -> "weak"
          in
          Printf.printf
            "\n%s scaling, %s (%.0f cycles/iter @ %.1f GHz, WSE3 wafers)\n"
            mode d.id cpi (machine.Machine.clock_hz /. 1e9);
          Printf.printf "%8s %16s %10s %10s %8s %6s %8s\n" "wafers" "global"
            "t_iter us" "GPts/s" "speedup" "eff" "feasible";
          List.iter
            (fun (pt : SC.point) ->
              let wx, wy = pt.SC.wafers in
              let gx, gy, gz = pt.SC.global in
              Printf.printf "%8s %16s %10.2f %10.1f %7.2fx %5.0f%% %8s\n"
                (Printf.sprintf "%dx%d" wx wy)
                (Printf.sprintf "%dx%dx%d" gx gy gz)
                (pt.SC.t_iter_s *. 1e6) pt.SC.gpts_per_s pt.SC.speedup
                (pt.SC.efficiency *. 100.0)
                (if pt.SC.feasible then "yes" else "no"))
            fig.SC.points;
          List.iter
            (fun ((name, c) : string * Wsc_perf.Cluster.cluster_measurement) ->
              Printf.printf "  baseline %-18s %4d devices %10.1f GPts/s\n" name
                c.Wsc_perf.Cluster.devices c.Wsc_perf.Cluster.gpts_per_s)
            fig.SC.baselines;
          figures := SC.to_json fig :: !figures)
        [
          SC.strong ~machine ~cycles_per_iter:cpi d;
          SC.weak ~machine ~cycles_per_iter:cpi d;
        ])
    B.all;
  let doc =
    J.summary ~tool:"bench-multiwafer"
      ~config:
        [
          ("machine", J.String machine.Machine.name);
          ("size", J.String "tiny");
          ("cores", J.Int cores);
          ("wafer_grids", J.List [ J.String "2x1"; J.String "2x2" ]);
        ]
      ~results:
        [
          J.Obj
            [
              ("validation", J.List (List.rev !rows));
              ("scaling", J.List (List.rev !figures));
            ];
        ]
  in
  let oc = open_out "BENCH_PR8.json" in
  J.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote BENCH_PR8.json\n";
  if !mismatches = 0 then
    Printf.printf
      "all multi-wafer runs bit-identical to the single-wafer simulation\n"
  else begin
    Printf.printf "MISMATCH on %d run(s)\n" !mismatches;
    exit 1
  end

(* ------------------------------------------------------------------ *)

(** PR 9 experiment: wafer-level fault tolerance.  Every benchmark at
    2x1 and 2x2 wafers under seeded halo-drop / halo-corrupt / crash
    injection with checkpoint/rollback recovery on — the recovered
    fields must stay bit-identical to the fault-free single-wafer run
    (exit 1 on any mismatch), and the JSON records what recovery cost:
    replayed epochs and device cycles beyond the fault-free
    co-simulation, checkpoint count and bytes.  One loss leg per grid
    demonstrates graceful degradation (dead + tainted wafers reported,
    no identity claim).  PR 6 honesty rules: cores ride along and
    oversubscribed legs are flagged. *)
let mwfaults () =
  header
    "Wafer-level fault tolerance: inter-wafer fault injection with\n\
     checkpoint/rollback recovery; recovered fields must be\n\
     bit-identical to the fault-free single-wafer run";
  let module J = Wsc_trace.Json in
  let module MC = Wsc_multiwafer.Mwcampaign in
  let module Wf = Wsc_faults.Faults.Wafer in
  let machine = Machine.wse3 in
  let cores = Domain.recommended_domain_count () in
  let mismatches = ref 0 in
  let rows = ref [] in
  Printf.printf "%d core(s) available (Domain.recommended_domain_count)\n\n"
    cores;
  Printf.printf "%-10s %6s %-12s %4s %4s %4s %6s %5s %9s %9s\n" "benchmark"
    "wafers" "kind" "inj" "det" "rbk" "replay" "ckpt" "overhead" "identical";
  (* one engine across every leg: each slice shape compiles once for
     the whole experiment, and respawned wafers always hit the cache *)
  let engine = Wsc_serve.Engine.create () in
  List.iter
    (fun (d : B.descr) ->
      List.iter
        (fun (wx, wy) ->
          let domains = wx * wy in
          let oversubscribed = domains > cores in
          let report =
            MC.run ~engine ~machine ~bench:d.id ~size:B.Tiny ~wafers:(wx, wy)
              ~kinds:[ Wf.Halo_drop; Wf.Halo_corrupt; Wf.Crash ]
              ~resilient:true ~rates:[ 0.1; 0.25 ] ~seeds:[ 1 ] ()
          in
          (* one loss cell per grid: permanent wafer loss must degrade
             gracefully (report, not crash), so it carries no identity
             demand *)
          let loss =
            MC.run ~engine ~machine ~bench:d.id ~size:B.Tiny ~wafers:(wx, wy)
              ~kinds:[ Wf.Loss ] ~resilient:true ~rates:[ 0.1; 0.25 ] ~seeds:[ 1 ]
              ()
          in
          let cell_row recovery_demanded (c : MC.cell) =
            let broken =
              recovery_demanded
              && ((c.MC.completed && (not c.MC.degraded)
                   && not c.MC.bit_identical)
                  || c.MC.error <> None)
            in
            if broken then begin
              incr mismatches;
              Printf.printf "    RECOVERY NOT BIT-IDENTICAL: %s %s %s\n" d.id
                (Printf.sprintf "%dx%d" wx wy)
                (Wf.kind_to_string c.MC.kind)
            end;
            Printf.printf "%-10s %6s %-12s %4d %4d %4d %6d %5d %9.0f %9s\n"
              d.id
              (Printf.sprintf "%dx%d" wx wy)
              (Wf.kind_to_string c.MC.kind)
              c.MC.injected c.MC.detections c.MC.rollbacks
              c.MC.replayed_epochs c.MC.checkpoints
              (if Float.is_nan c.MC.overhead_cycles then 0.0
               else c.MC.overhead_cycles)
              (if c.MC.degraded then
                 Printf.sprintf "degraded(%d)" c.MC.lost_wafers
               else if c.MC.bit_identical then "yes"
               else "NO");
            rows :=
              J.Obj
                [
                  ("benchmark", J.String d.id);
                  ("wafers", J.String (Printf.sprintf "%dx%d" wx wy));
                  ("domains", J.Int domains);
                  ("cores", J.Int cores);
                  ("oversubscribed", J.Bool oversubscribed);
                  ("kind", J.String (Wf.kind_to_string c.MC.kind));
                  ("rate", J.Float c.MC.rate);
                  ("seed", J.Int c.MC.seed);
                  ("recovery_demanded", J.Bool recovery_demanded);
                  ("completed", J.Bool c.MC.completed);
                  ("bit_identical", J.Bool c.MC.bit_identical);
                  ("degraded", J.Bool c.MC.degraded);
                  ("injected", J.Int c.MC.injected);
                  ("detections", J.Int c.MC.detections);
                  ("rollbacks", J.Int c.MC.rollbacks);
                  ("replayed_epochs", J.Int c.MC.replayed_epochs);
                  ("respawns", J.Int c.MC.respawns);
                  ("checkpoints", J.Int c.MC.checkpoints);
                  ("checkpoint_bytes", J.Int c.MC.checkpoint_bytes);
                  ("lost_wafers", J.Int c.MC.lost_wafers);
                  ("tainted_wafers", J.Int c.MC.tainted_wafers);
                  ("fault_free_cycles", J.Float report.MC.baseline_cycles);
                  ("device_cycles", J.float_or_null c.MC.device_cycles);
                  ("overhead_cycles", J.float_or_null c.MC.overhead_cycles);
                ]
              :: !rows
          in
          List.iter (cell_row true) report.MC.cells;
          List.iter (cell_row false) loss.MC.cells)
        [ (2, 1); (2, 2) ])
    B.all;
  let doc =
    J.summary ~tool:"bench-mwfaults"
      ~config:
        [
          ("machine", J.String machine.Machine.name);
          ("size", J.String "tiny");
          ("cores", J.Int cores);
          ("wafer_grids", J.List [ J.String "2x1"; J.String "2x2" ]);
          ("rates", J.List [ J.Float 0.1; J.Float 0.25 ]);
          ("seed", J.Int 1);
          ( "checkpoint_cadence",
            J.Int Wf.default_resilience.Wf.checkpoint_cadence );
          ("max_retries", J.Int Wf.default_resilience.Wf.max_retries);
        ]
      ~results:(List.rev !rows)
  in
  let oc = open_out "BENCH_PR9.json" in
  J.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote BENCH_PR9.json\n";
  if !mismatches = 0 then
    Printf.printf
      "all recovered runs bit-identical to the fault-free single-wafer run\n"
  else begin
    Printf.printf "RECOVERY MISMATCH on %d run(s)\n" !mismatches;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Autotuning: tuned vs default cycles + predictor calibration         *)
(* (BENCH_PR10.json)                                                   *)
(* ------------------------------------------------------------------ *)

(** One seeded tuning run per benchmark.  Validation baked in: tuned
    must be no slower than default on every program and strictly faster
    on at least one, and every winner must carry an oracle pass — any
    violation exits 1.  The calibration half compares the screening
    predictor against the confirming simulation for the default and the
    winner of every benchmark, flagging >10% deviations. *)
let tune_bench () =
  header "Autotuning: tuned vs default, oracle-gated (BENCH_PR10.json)";
  let module T = Wsc_tune.Tune in
  let module J = Wsc_trace.Json in
  let machine = Machine.wse3 in
  let cores = Domain.recommended_domain_count () in
  let domains = max 1 (min 4 cores) in
  let seed = 1 in
  let config = { T.default_config with T.seed; domains; machine } in
  Printf.printf
    "%d core(s) available (Domain.recommended_domain_count); fan-out uses %d \
     domain(s)%s\n\
     seed %d, screen %d, top %d, extent %d\n\n"
    cores domains
    (if domains > cores then " — OVERSUBSCRIBED" else "")
    seed config.T.screen config.T.top_k config.T.extent;
  Printf.printf "%-10s %7s %11s %11s %8s %7s %6s %6s\n" "benchmark" "space"
    "default c/i" "tuned c/i" "improve" "oracle" "evals" "saved";
  let store = Wsc_serve.Tuned.create () in
  let results =
    List.map
      (fun (d : B.descr) ->
        let r = T.run ~config d in
        let registered = T.register store r in
        Printf.printf "%-10s %7d %11.0f %11.0f %7.1f%% %7s %6d %6d\n" r.T.r_bench
          r.T.r_space_size r.T.r_default_cycles r.T.r_tuned_cycles
          r.T.r_improvement_pct
          (match r.T.r_oracle_ok with
          | Some true -> "PASS"
          | Some false -> "FAIL"
          | None -> "off")
          r.T.r_evals_total r.T.r_evals_saved;
        (r, registered))
      B.all
  in
  (* predictor calibration: screening prediction vs confirming
     simulation, default and winner per benchmark *)
  Printf.printf "\npredictor calibration (screen prediction vs confirmed "
  ;
  Printf.printf "simulation):\n";
  Printf.printf "%-10s %-8s %11s %11s %7s %s\n" "benchmark" "config"
    "predicted" "simulated" "dev" "";
  let calib_rows = ref [] in
  let flagged = ref 0 in
  List.iter
    (fun ((r : T.result), _) ->
      let row label rendered =
        match
          List.find_opt (fun (c : T.candidate) -> c.T.c_rendered = rendered)
            r.T.r_candidates
        with
        | Some { T.c_predicted = Ok pred; c_confirmed = Some sim; _ } ->
            let dev =
              if sim > 0.0 then 100.0 *. Float.abs (pred -. sim) /. sim
              else 0.0
            in
            let flag = dev > 10.0 in
            if flag then incr flagged;
            Printf.printf "%-10s %-8s %11.0f %11.0f %6.1f%% %s\n" r.T.r_bench
              label pred sim dev
              (if flag then "FLAGGED >10%" else "");
            calib_rows :=
              J.Obj
                [
                  ("benchmark", J.String r.T.r_bench);
                  ("config", J.String label);
                  ("predicted_cycles_per_iter", J.Float pred);
                  ("simulated_cycles_per_iter", J.Float sim);
                  ("deviation_pct", J.Float dev);
                  ("flagged", J.Bool flag);
                ]
              :: !calib_rows
        | _ -> ()
      in
      row "default"
        (Wsc_core.Pipeline.options_to_string Wsc_core.Pipeline.default_options);
      row "tuned" (Wsc_core.Pipeline.options_to_string r.T.r_tuned_options);
      (* spatial generalization: the tuner predicts on the proxy extent —
         re-simulate the winner on a larger grid and compare per-iteration
         steady state, the extrapolation the predictor actually risks *)
      let d = B.find r.T.r_bench in
      let wide = config.T.extent + 2 in
      let steady o =
        let cyc iters =
          let c, _, _ =
            WP.simulate_iters ~pipeline_options:o ~extent:wide d ~machine
              ~iters
          in
          c
        in
        if d.B.default_iterations <= 1 then cyc 2 /. 2.0
        else (cyc 8 -. cyc 2) /. 6.0
      in
      (match steady r.T.r_tuned_options with
      | sim ->
          let pred = r.T.r_tuned_cycles in
          let dev =
            if sim > 0.0 then 100.0 *. Float.abs (pred -. sim) /. sim else 0.0
          in
          let flag = dev > 10.0 in
          if flag then incr flagged;
          Printf.printf "%-10s %-8s %11.0f %11.0f %6.1f%% %s\n" r.T.r_bench
            (Printf.sprintf "tuned@%d" wide)
            pred sim dev
            (if flag then "FLAGGED >10%" else "");
          calib_rows :=
            J.Obj
              [
                ("benchmark", J.String r.T.r_bench);
                ("config", J.String (Printf.sprintf "tuned@%dx%d" wide wide));
                ("predicted_cycles_per_iter", J.Float pred);
                ("simulated_cycles_per_iter", J.Float sim);
                ("deviation_pct", J.Float dev);
                ("flagged", J.Bool flag);
              ]
            :: !calib_rows
      | exception _ -> ()))
    results;
  let rows =
    List.map
      (fun ((r : T.result), registered) ->
        J.Obj
          [
            ("benchmark", J.String r.T.r_bench);
            ("program_key", J.String r.T.r_program_key);
            ("space_size", J.Int r.T.r_space_size);
            ("screened", J.Int r.T.r_screened);
            ("confirmed", J.Int r.T.r_confirmed);
            ("evals_total", J.Int r.T.r_evals_total);
            ("evals_run", J.Int r.T.r_evals_run);
            ("evals_saved", J.Int r.T.r_evals_saved);
            ("default_cycles_per_iter", J.Float r.T.r_default_cycles);
            ("tuned_cycles_per_iter", J.Float r.T.r_tuned_cycles);
            ("improvement_pct", J.Float r.T.r_improvement_pct);
            ( "tuned_config",
              Wsc_serve.Tuned.config_of_options r.T.r_tuned_options );
            ( "oracle_ok",
              match r.T.r_oracle_ok with
              | Some b -> J.Bool b
              | None -> J.Null );
            ("oracle_checks", J.Int r.T.r_oracle_checks);
            ("registered", J.Bool registered);
            ("cores", J.Int cores);
            ("domains", J.Int domains);
            ("oversubscribed", J.Bool (domains > cores));
          ])
      results
  in
  let doc =
    J.summary ~tool:"bench-tune"
      ~config:
        [
          ("machine", J.String machine.Machine.name);
          ("seed", J.Int seed);
          ("screen", J.Int config.T.screen);
          ("top_k", J.Int config.T.top_k);
          ("extent", J.Int config.T.extent);
          ("cores", J.Int cores);
          ("domains", J.Int domains);
        ]
      ~results:
        (rows
        @ [
            J.Obj
              [
                ("calibration", J.List (List.rev !calib_rows));
                ("calibration_flagged", J.Int !flagged);
                ("registered_configs", J.Int (Wsc_serve.Tuned.size store));
              ];
          ])
  in
  let oc = open_out "BENCH_PR10.json" in
  J.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote BENCH_PR10.json (%d tuned config(s) registered)\n"
    (Wsc_serve.Tuned.size store);
  (* validation *)
  let slower =
    List.filter
      (fun ((r : T.result), _) -> r.T.r_tuned_cycles > r.T.r_default_cycles)
      results
  in
  let strictly_better =
    List.exists
      (fun ((r : T.result), _) -> r.T.r_tuned_cycles < r.T.r_default_cycles)
      results
  in
  let oracle_clean =
    List.for_all
      (fun ((r : T.result), _) -> r.T.r_oracle_ok = Some true)
      results
  in
  if slower <> [] then begin
    List.iter
      (fun ((r : T.result), _) ->
        Printf.printf "TUNED SLOWER THAN DEFAULT: %s\n" r.T.r_bench)
      slower;
    exit 1
  end;
  if not strictly_better then begin
    Printf.printf "NO BENCHMARK IMPROVED: tuning found nothing\n";
    exit 1
  end;
  if not oracle_clean then begin
    Printf.printf "ORACLE GATE FAILED on at least one benchmark\n";
    exit 1
  end;
  Printf.printf
    "tuned <= default everywhere, strictly better on >= 1, all winners \
     oracle-validated\n"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("tab1", tab1);
    ("tflops", tflops);
    ("ablations", ablations);
    ("weak", weak);
    ("sched", sched);
    ("par", par);
    ("serve", serve_bench);
    ("perfsmoke", perfsmoke);
    ("trace", trace_exp);
    ("micro", micro);
    ("multiwafer", multiwafer);
    ("mwfaults", mwfaults);
    ("tune", tune_bench);
  ]

let () =
  Wsc_core.Csl_stencil_interp.register ();
  (* [--json FILE] may ride along any experiment selection; alone it
     runs only the summary *)
  let rec split_json acc = function
    | "--json" :: file :: rest -> (Some file, List.rev_append acc rest)
    | a :: rest -> split_json (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json, rest =
    match Array.to_list Sys.argv with
    | _ :: rest -> split_json [] rest
    | [] -> (None, [])
  in
  (match json with Some path -> json_summary path | None -> ());
  let requested =
    match rest with
    | [] when json <> None -> []
    | [] -> List.map fst experiments
    | rest -> rest
  in
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (have: %s)\n" id
            (String.concat " " (List.map fst experiments));
          exit 1)
    requested
