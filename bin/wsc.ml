(** wsc — the wafer-scale stencil compiler driver.

    Subcommands:
    - [compile]: run the full pipeline on a built-in benchmark or a
      stencil-dialect IR file and write the generated CSL files;
    - [simulate]: compile and execute on the fabric simulator, checking
      the result against the sequential reference interpreter;
    - [trace]: simulate with the event collector attached and export a
      Chrome-trace JSON timeline plus profiling tables;
    - [perf]: report simulated throughput for a benchmark/machine/size;
    - [ir]: print the IR after a chosen pipeline stage;
    - [fuzz]: run a seeded differential-testing campaign (random
      programs, three cross-checked executions, crash artifacts), or
      emit the generated cases as a corpus of [.mlir] files;
    - [reduce]: shrink a crash artifact to a minimal reproducer;
    - [serve]: long-running compile service (JSON-lines over stdio or a
      Unix socket, persistent worker domains, content-addressed cache);
    - [batch]: run the serve engine over a manifest of IR files;
    - [multiwafer]: decompose a benchmark across N simulated wafers,
      co-simulate one wafer per domain, and check bit-identity against
      the undecomposed single-wafer run. *)

open Cmdliner
module B = Wsc_benchmarks.Benchmarks
module P = Wsc_frontends.Stencil_program
module I = Wsc_dialects.Interp
module F = Wsc_wse.Fabric
module T = Wsc_trace.Trace

let ( let* ) = Result.bind

let program_of ~bench ~input ~size ~iterations :
    (P.t option * Wsc_ir.Ir.op, [ `Msg of string ]) result =
  match (bench, input) with
  | Some id, None -> (
      match B.find id with
      | exception Invalid_argument msg -> Error (`Msg msg)
      | d ->
          let p =
            match iterations with
            | Some n -> d.make_n size n
            | None -> d.make size
          in
          Ok (Some p, P.compile p))
  | None, Some file -> Ok (None, Wsc_ir.Parser.parse_file file)
  | Some _, Some _ ->
      Error (`Msg "give only one of --bench NAME or an input FILE, not both")
  | None, None -> Error (`Msg "give exactly one of --bench NAME or an input FILE")

let size_conv =
  let bad s =
    Error
      (`Msg
        (Printf.sprintf "bad size '%s': accepted sizes are tiny|small|medium|large|NxM"
           s))
  in
  let parse s =
    match s with
    | "tiny" -> Ok B.Tiny
    | "small" -> Ok B.Small
    | "medium" -> Ok B.Medium
    | "large" -> Ok B.Large
    | s -> (
        match String.split_on_char 'x' s with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some x, Some y -> Ok (B.Proxy (x, y))
            | _ -> bad s)
        | _ -> bad s)
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (B.size_to_string s))

let machine_conv =
  let parse = function
    | "wse2" -> Ok Wsc_wse.Machine.wse2
    | "wse3" -> Ok Wsc_wse.Machine.wse3
    | s -> Error (`Msg ("unknown machine: " ^ s))
  in
  Arg.conv (parse, fun fmt (m : Wsc_wse.Machine.t) -> Format.pp_print_string fmt m.name)

let bench_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "bench" ] ~docv:"NAME"
        ~doc:"Built-in benchmark (jacobian, diffusion, acoustic, seismic, uvkbe).")

let input_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Stencil-dialect IR input file.")

let size_arg =
  Arg.(
    value & opt size_conv B.Tiny
    & info [ "s"; "size" ] ~docv:"SIZE"
        ~doc:"Problem size: tiny, small, medium, large or WxH.")

let iters_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "n"; "iterations" ] ~docv:"N" ~doc:"Timestep count override.")

let machine_arg =
  Arg.(
    value & opt machine_conv Wsc_wse.Machine.wse3
    & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc:"Target: wse2 or wse3.")

let outdir_arg =
  Arg.(
    value & opt string "out"
    & info [ "o"; "outdir" ] ~docv:"DIR" ~doc:"Output directory for CSL files.")

let pipeline_options = Wsc_core.Pipeline.default_options

let write_json (path : string) (doc : Wsc_trace.Json.t) : unit =
  let oc = open_out path in
  Wsc_trace.Json.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ---------------- fabric driver selection ---------------- *)

let driver_kind_conv =
  let parse = function
    | "polling" -> Ok `Polling
    | "sched" | "event" -> Ok `Event
    | "parallel" -> Ok `Parallel
    | s ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown driver '%s': accepted drivers are polling, sched, parallel"
               s))
  in
  let print fmt k =
    Format.pp_print_string fmt
      (match k with `Polling -> "polling" | `Event -> "sched" | `Parallel -> "parallel")
  in
  Arg.conv (parse, print)

let driver_arg =
  Arg.(
    value & opt driver_kind_conv `Event
    & info [ "driver" ] ~docv:"DRIVER"
        ~doc:
          "Fabric driver: $(b,polling) (rescan every PE each round), \
           $(b,sched) (event-driven ready queue, the default; $(b,event) is \
           an alias), or $(b,parallel) (domain-decomposed event-driven \
           execution, see --domains).  Results are bit-identical across all \
           three.")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domain count for --driver parallel: the grid is cut into N \
           vertical strips, each simulated on its own core.  0 (the \
           default) uses the runtime's recommended count.")

let resolve_driver kind domains : F.driver =
  match kind with
  | `Polling -> F.Polling
  | `Event -> F.Event_driven
  | `Parallel ->
      F.Parallel
        (if domains <= 0 then Domain.recommended_domain_count () else domains)

(** Freshly initialized state grids for a frontend program. *)
let init_grids_of (p : P.t) : I.grid list =
  let ft = P.field_type p in
  List.map
    (fun _ ->
      let g3 = I.grid_of_typ ft in
      I.init_grid g3;
      I.retensorize_grid g3)
    p.P.state

(* ---------------- compile ---------------- *)

let compile_cmd =
  let run bench input size iterations outdir =
    let* _, m = program_of ~bench ~input ~size ~iterations in
    let compiled = Wsc_core.Pipeline.compile ~options:pipeline_options m in
    let files = Wsc_core.Csl_printer.print_files compiled in
    if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
    List.iter
      (fun (f : Wsc_core.Csl_printer.file) ->
        let path = Filename.concat outdir f.filename in
        let oc = open_out path in
        output_string oc f.contents;
        close_out oc;
        Printf.printf "wrote %s (%d LoC)\n" path (Wsc_core.Csl_printer.loc_of f.contents))
      files;
    Ok ()
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile to CSL source files.")
    Term.(
      term_result
        (const run $ bench_arg $ input_arg $ size_arg $ iters_arg $ outdir_arg))

(* ---------------- simulate ---------------- *)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the scheduler counters and the per-PE busy/blocked summary \
           after the run.")

let time_arg =
  Arg.(
    value & flag
    & info [ "time" ]
        ~doc:
          "Also report the simulator's own wall-clock time (seconds), the \
           driver and the domain count — the host-side cost of the run, as \
           opposed to the simulated cycles.")

let sim_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable run summary (simulated cycles, wall_s, \
           driver, domains, reference divergence).")

let simulate_cmd =
  let run bench input size iterations machine stats driver_kind domains time
      json_out =
    let* prog, m = program_of ~bench ~input ~size ~iterations in
    let compiled = Wsc_core.Pipeline.compile ~options:pipeline_options m in
    match prog with
    | None -> Error (`Msg "simulate: reference check needs --bench")
    | Some p ->
        let driver = resolve_driver driver_kind domains in
        let init = init_grids_of p in
        (* simulate first: the fabric guards (grid size, per-PE memory)
           reject oversized runs before the expensive reference pass *)
        let t0 = Unix.gettimeofday () in
        let h = Wsc_wse.Host.simulate ~driver machine compiled init in
        let wall_s = Unix.gettimeofday () -. t0 in
        let out = Wsc_wse.Host.read_all h in
        let ref_grids = P.run_reference p in
        let maxd =
          List.fold_left Float.max 0.0 (List.map2 I.max_abs_diff ref_grids out)
        in
        let st = F.total_stats h.sim in
        Printf.printf "simulated %s on %s: %dx%d PEs, %.0f cycles (%.3f ms)\n"
          p.P.pname machine.name h.sim.width h.sim.height
          (F.elapsed_cycles h.sim)
          (1e3 *. F.elapsed_seconds h.sim);
        Printf.printf "  flops=%.3e  sent=%d elems  tasks=%d\n" st.flops
          st.elems_sent st.task_activations;
        if time then
          Printf.printf "  wall %.3f s  (driver=%s domains=%d requested=%d)\n"
            wall_s (F.driver_name driver)
            (F.effective_domains driver ~width:h.sim.width)
            (F.driver_domains driver);
        if stats then begin
          let k = F.sched_stats h.sim in
          Printf.printf
            "  scheduler: scans=%d probes=%d wakeups=%d parks=%d \
             max_queue_depth=%d\n"
            k.scans k.probes k.wakeups k.parks k.max_queue_depth;
          print_string
            (Wsc_trace.Aggregate.busy_blocked_table (F.pe_summaries h.sim))
        end;
        Printf.printf "  max |difference| vs sequential reference: %.3e  -> %s\n"
          maxd
          (if maxd < 1e-4 then "MATCH" else "MISMATCH");
        (match json_out with
        | None -> ()
        | Some path ->
            let module J = Wsc_trace.Json in
            write_json path
              (J.summary ~tool:"simulate"
                 ~config:
                   [
                     ("bench", J.String p.P.pname);
                     ("machine", J.String machine.name);
                     ("size", J.String (B.size_to_string size));
                     ("width", J.Int h.sim.width);
                     ("height", J.Int h.sim.height);
                   ]
                 ~results:
                   [
                     J.Obj
                       [
                         ("cycles", J.Float (F.elapsed_cycles h.sim));
                         ("seconds", J.Float (F.elapsed_seconds h.sim));
                         ("wall_s", J.Float wall_s);
                         ("driver", J.String (F.driver_name driver));
                         (* effective worker count after clamping, not
                            the request: --domains 0 expands to the
                            runtime's recommended count and N > width
                            clamps, so artifacts must not echo the ask *)
                         ( "domains",
                           J.Int (F.effective_domains driver ~width:h.sim.width)
                         );
                         ("domains_requested", J.Int (F.driver_domains driver));
                         ("max_diff", J.Float maxd);
                       ];
                   ]));
        if maxd >= 1e-4 then exit 1;
        Ok ()
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Compile, run on the fabric simulator, check against the reference.")
    Term.(
      term_result
        (const run $ bench_arg $ input_arg $ size_arg $ iters_arg $ machine_arg
       $ stats_arg $ driver_arg $ domains_arg $ time_arg $ sim_json_arg))

(* ---------------- trace ---------------- *)

let trace_out_arg =
  Arg.(
    value & opt string "trace.json"
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:
          "Chrome-trace JSON output path (open with Perfetto or \
           chrome://tracing).")

let top_arg =
  Arg.(
    value & opt int 8
    & info [ "top" ] ~docv:"N" ~doc:"Hottest-PE rows in the busy/blocked table.")

let trace_cmd =
  let run bench input size iterations machine out top =
    let* prog, m = program_of ~bench ~input ~size ~iterations in
    match (prog, bench) with
    | Some p, Some id ->
        let remarks = ref [] in
        let pass_options =
          {
            Wsc_ir.Pass.default_options with
            on_remark = Some (Wsc_trace.Remarks.collect remarks);
          }
        in
        let compiled =
          Wsc_core.Pipeline.compile ~options:pipeline_options ~pass_options m
        in
        let sink = T.collector () in
        let h = Wsc_wse.Host.simulate ~trace:sink machine compiled (init_grids_of p) in
        Wsc_trace.Remarks.emit sink !remarks;
        Wsc_trace.Chrome.write_file ~path:out sink;
        let simulated = F.elapsed_cycles h.sim in
        Printf.printf "traced %s on %s: %dx%d PEs, %.0f cycles, %d events -> %s\n\n"
          p.P.pname machine.name h.sim.width h.sim.height simulated
          (T.event_count sink) out;
        print_string (Wsc_trace.Remarks.table !remarks);
        print_newline ();
        print_string
          (Wsc_trace.Aggregate.busy_blocked_table ~top (F.pe_summaries h.sim));
        print_newline ();
        print_string (Wsc_trace.Aggregate.link_table (T.events sink));
        print_newline ();
        let predicted =
          Wsc_perf.Wse_perf.predict_cycles ~pipeline_options (B.find id) ~machine
            ~size ~iterations:p.P.iterations
        in
        print_endline
          (Wsc_trace.Aggregate.deviation_line
             (Wsc_trace.Aggregate.deviation ~bench:id ~machine:machine.name
                ~simulated_cycles:simulated ~predicted_cycles:predicted));
        Ok ()
    | _ ->
        Error
          (`Msg
            "trace: needs --bench (initial data and the analytic prediction \
             come from the benchmark)")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Simulate with the event collector attached; export a Perfetto \
          timeline and print the pass-remarks, busy/blocked, link and \
          deviation reports.")
    Term.(
      term_result
        (const run $ bench_arg $ input_arg $ size_arg $ iters_arg $ machine_arg
       $ trace_out_arg $ top_arg))

(* ---------------- faults ---------------- *)

module Faults = Wsc_faults.Faults
module Campaign = Wsc_faults_campaign.Campaign

let kind_conv =
  let parse s =
    match
      List.find_opt (fun k -> Faults.kind_to_string k = s) Faults.all_kinds
    with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown fault kind '%s': accepted kinds are %s" s
               (String.concat ", " (List.map Faults.kind_to_string Faults.all_kinds))))
  in
  Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt (Faults.kind_to_string k))

let kinds_arg =
  Arg.(
    value
    & opt (list kind_conv) Faults.all_kinds
    & info [ "k"; "kinds" ] ~docv:"KINDS"
        ~doc:
          "Comma-separated fault models to sweep: drop, corrupt, stall, halt, \
           backpressure (default: all).")

let rates_arg =
  Arg.(
    value
    & opt (list float) [ 0.001; 0.01 ]
    & info [ "r"; "rates" ] ~docv:"RATES"
        ~doc:"Comma-separated fault rates to sweep (per injection site).")

let seeds_arg =
  Arg.(
    value
    & opt (list int) [ 1; 2; 3 ]
    & info [ "seeds" ] ~docv:"SEEDS" ~doc:"Comma-separated campaign seeds.")

let no_resilience_arg =
  Arg.(
    value & flag
    & info [ "no-resilience" ]
        ~doc:
          "Disable the detection & recovery protocol: faults land undetected \
           (measures raw vulnerability instead of recovery overhead).")

let faults_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Also write the report as JSON.")

let faults_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Collect every cell's events (faults, retries, halts included) on \
           one shared timeline and export it as Chrome-trace JSON.")

let faults_cmd =
  let run bench size iterations machine driver_kind domains kinds rates seeds
      no_resilience json_out trace_out =
    match bench with
    | None -> Error (`Msg "faults: --bench required")
    | Some id -> (
        match B.find id with
        | exception Invalid_argument msg -> Error (`Msg msg)
        | _ ->
            let driver = resolve_driver driver_kind domains in
            let sink = Option.map (fun _ -> T.collector ()) trace_out in
            let report =
              Campaign.run ~driver ~machine ?iterations ~kinds ?trace:sink
                ~bench:id ~size ~resilient:(not no_resilience) ~rates ~seeds ()
            in
            print_string (Campaign.to_string report);
            (match json_out with
            | None -> ()
            | Some path ->
                let oc = open_out path in
                Wsc_trace.Json.to_channel oc (Campaign.to_json report);
                output_char oc '\n';
                close_out oc;
                Printf.printf "wrote %s\n" path);
            (match (trace_out, sink) with
            | Some path, Some sink ->
                Wsc_trace.Chrome.write_file ~path sink;
                Printf.printf "wrote %s (%d events)\n" path (T.event_count sink);
                print_string (Wsc_trace.Aggregate.fault_table (T.events sink))
            | _ -> ());
            Ok ())
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run a deterministic fault-injection campaign (fault model × rate × \
          seed) against the fabric simulator and report survival, recovery \
          overhead and divergence vs the sequential reference.")
    Term.(
      term_result
        (const run $ bench_arg $ size_arg $ iters_arg $ machine_arg $ driver_arg
       $ domains_arg $ kinds_arg $ rates_arg $ seeds_arg $ no_resilience_arg
       $ faults_json_arg $ faults_trace_arg))

(* ---------------- fuzz / reduce ---------------- *)

module H = Wsc_harden

let fuzz_count_arg =
  Arg.(
    value & opt int 20
    & info [ "c"; "count" ] ~docv:"N" ~doc:"How many programs to generate.")

let fuzz_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Campaign seed: case $(i,i) depends only on (SEED, $(i,i)), so the \
           same seed replays the identical campaign.")

let crash_dir_arg =
  Arg.(
    value & opt string "crashes"
    & info [ "crash-dir" ] ~docv:"DIR"
        ~doc:"Where failing cases are dumped as crash artifacts.")

let inject_bug_arg =
  Arg.(
    value & flag
    & info [ "inject-bug" ]
        ~doc:
          "Test-only: splice a deliberately wrong pass into the pipeline to \
           prove the harness catches, dumps and reduces a miscompile.")

let reduce_budget_arg =
  Arg.(
    value & opt int 150
    & info [ "reduce-budget" ] ~docv:"N"
        ~doc:
          "Max oracle re-runs while reducing one failing case (0 disables \
           reduction).")

let fuzz_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Also write the campaign summary as JSON.")

let emit_corpus_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-corpus" ] ~docv:"DIR"
        ~doc:
          "Instead of running the differential oracle, write the generated \
           cases to DIR as standalone .mlir files (fuzz-s<seed>-c<i>.mlir).  \
           Emission is a pure function of (--seed, --count): the same seed \
           always writes byte-identical files.")

let mwfaults_fuzz_arg =
  Arg.(
    value & flag
    & info [ "mwfaults" ]
        ~doc:
          "Add the chaos tier: co-simulate each case at 2x1 wafers under \
           low-rate seeded wafer faults with the resilience protocol on, \
           demanding post-recovery bit-identity (failure key \
           mwfaults:<kind>).")

let fuzz_cmd =
  let run count seed machine crash_dir inject_bug mwfaults reduce_budget
      json_out emit_corpus =
    match emit_corpus with
    | Some dir ->
        let paths = H.Corpus.emit ~dir ~seed ~count in
        Printf.printf "emitted %d corpus file(s) (seed %d) into %s\n"
          (List.length paths) seed dir;
        Ok ()
    | None ->
    let cfg =
      {
        H.Campaign.seed;
        count;
        machine;
        crash_dir;
        inject_bug;
        mwfaults;
        reduce_budget;
      }
    in
    let on_case (c : H.Campaign.case) =
      match c.H.Campaign.c_failure with
      | None -> ()
      | Some key ->
          Printf.eprintf "wsc fuzz: case %d failed [%s]\n%!" c.H.Campaign.c_index
            key
    in
    let report = H.Campaign.run ~on_case cfg in
    print_string (H.Campaign.to_string report);
    (match json_out with
    | Some path -> write_json path (H.Campaign.to_json report)
    | None -> ());
    if H.Campaign.crashes report > 0 then exit 1;
    Ok ()
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate seeded random stencil programs and cross-check three \
          executions of each (reference interpreter, mid-level interpretation, \
          fabric simulation) plus a print/parse fixpoint at every pass \
          boundary; failing cases are reduced and dumped as crash artifacts.  \
          With $(b,--emit-corpus), just write the cases as .mlir files.")
    Term.(
      term_result
        (const run $ fuzz_count_arg $ fuzz_seed_arg $ machine_arg $ crash_dir_arg
       $ inject_bug_arg $ mwfaults_fuzz_arg $ reduce_budget_arg $ fuzz_json_arg
       $ emit_corpus_arg))

let crash_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"CRASH"
        ~doc:"A crash directory (or its report.json) written by wsc fuzz.")

let reduce_cmd =
  let run path machine reduce_budget json_out =
    match H.Artifact.load path with
    | Error msg -> Error (`Msg ("reduce: " ^ msg))
    | Ok a ->
        let inject_bug = a.H.Artifact.inject_bug in
        let key_of q =
          match (H.Oracle.check ~inject_bug ~machine q).H.Oracle.failure with
          | Some f -> Some (H.Oracle.failure_key f)
          | None -> None
        in
        if key_of a.H.Artifact.program <> Some a.H.Artifact.key then
          Error
            (`Msg
              (Printf.sprintf
                 "reduce: crash %s does not reproduce failure [%s]"
                 (H.Artifact.name a) a.H.Artifact.key))
        else begin
          (* restart from the stored reduction when one exists *)
          let start =
            match a.H.Artifact.reduced with
            | Some r -> r
            | None -> a.H.Artifact.program
          in
          let r =
            H.Reduce.reduce ~max_checks:reduce_budget
              ~still_fails:(fun q -> key_of q = Some a.H.Artifact.key)
              start
          in
          let original_size = H.Fuzz.program_size a.H.Artifact.program in
          let reduced_size = H.Fuzz.program_size r.H.Reduce.reduced in
          let parent =
            (* the artifact lives in <crash_dir>/<name>/; recover
               <crash_dir> from either form of the argument *)
            if Sys.file_exists path && Sys.is_directory path then
              Filename.dirname path
            else Filename.dirname (Filename.dirname path)
          in
          let dir =
            H.Artifact.save ~dir:parent
              { a with H.Artifact.reduced = Some r.H.Reduce.reduced }
          in
          Printf.printf
            "reduced %s [%s]: size %d -> %d (%d steps, %d oracle checks)\n"
            (H.Artifact.name a) a.H.Artifact.key original_size reduced_size
            r.H.Reduce.steps r.H.Reduce.checks;
          Printf.printf "  program: %s\n" (H.Fuzz.describe a.H.Artifact.program);
          Printf.printf "  reduced: %s\n" (H.Fuzz.describe r.H.Reduce.reduced);
          Printf.printf "  updated %s\n" dir;
          (match json_out with
          | Some out ->
              write_json out
                (Wsc_trace.Json.summary ~tool:"reduce"
                   ~config:
                     [
                       ("crash", Wsc_trace.Json.String (H.Artifact.name a));
                       ("key", Wsc_trace.Json.String a.H.Artifact.key);
                     ]
                   ~results:
                     [
                       Wsc_trace.Json.Obj
                         [
                           ("original_size", Wsc_trace.Json.Int original_size);
                           ("reduced_size", Wsc_trace.Json.Int reduced_size);
                           ("steps", Wsc_trace.Json.Int r.H.Reduce.steps);
                           ("checks", Wsc_trace.Json.Int r.H.Reduce.checks);
                           ( "reduced",
                             H.Fuzz.program_to_json r.H.Reduce.reduced );
                         ];
                     ])
          | None -> ());
          Ok ()
        end
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:
         "Re-run the differential oracle on a crash artifact and shrink the \
          failing program to a minimal reproducer (delta debugging), updating \
          the artifact in place.")
    Term.(
      term_result
        (const run $ crash_arg $ machine_arg $ reduce_budget_arg $ fuzz_json_arg))

(* ---------------- serve / batch ---------------- *)

module Serve = Wsc_serve

let serve_domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains in the persistent compile pool (spawned once, \
           never per request).")

let cache_capacity_arg =
  Arg.(
    value & opt int Serve.Engine.default_capacity
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"Compile-cache capacity in entries (LRU eviction past it).")

let serve_timeout_arg =
  Arg.(
    value & opt float Serve.Engine.default_timeout_s
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Default per-request compile deadline; a request's own \
           $(b,timeout_s) field overrides it.")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Listen on a Unix-domain socket at PATH instead of stdio \
           (concurrent clients are multiplexed; the socket file is removed \
           on shutdown).")

let serve_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace of every request's phases (queue wait, \
           parse, per-pass compile, emit; one track per worker) at shutdown.")

let tuned_cache_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "tuned-cache" ] ~docv:"FILE"
        ~doc:
          "Load a tuned-config store (written by $(b,wsc tune --save)); \
           requests whose program hash has an entry compile under their \
           tuned options, counted as tuned hits in stats and the shutdown \
           line.")

let load_tuned (path : string option) :
    (Serve.Tuned.t option, [ `Msg of string ]) result =
  match path with
  | None -> Ok None
  | Some p -> (
      match Serve.Tuned.load_file p with
      | Ok t -> Ok (Some t)
      | Error msg -> Error (`Msg ("--tuned-cache: " ^ msg)))

let serve_cmd =
  let run domains capacity timeout socket trace_path tuned_path =
    match load_tuned tuned_path with
    | Error _ as e -> e
    | Ok tuned ->
        Serve.Server.install_signal_handlers ();
        let cfg =
          {
            Serve.Server.domains;
            capacity;
            timeout_s = timeout;
            options = pipeline_options;
            transport =
              (match socket with
              | Some path -> Serve.Server.Unix_socket path
              | None -> Serve.Server.Stdio);
            trace_path;
            tuned;
          }
        in
        ignore (Serve.Server.run cfg);
        Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running compile service: JSON-lines requests on stdin (or \
          $(b,--socket)), one JSON-lines response per request, compiles \
          fanned out across a persistent pool of worker domains with a \
          content-addressed LRU cache in front.  SIGINT/SIGTERM, a \
          $(b,shutdown) request or EOF all drain in-flight work and exit 0.")
    Term.(
      term_result
        (const run $ serve_domains_arg $ cache_capacity_arg $ serve_timeout_arg
       $ socket_arg $ serve_trace_arg $ tuned_cache_arg))

let manifest_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"MANIFEST"
        ~doc:
          "Manifest file: one .mlir path per line (relative to the \
           manifest), # comments allowed.")

let repeat_arg =
  Arg.(
    value & opt int 1
    & info [ "repeat" ] ~docv:"N"
        ~doc:
          "Submit the whole manifest N times; repeats hit the compile cache.")

let batch_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Also write the batch report as JSON.")

let dump_requests_arg =
  Arg.(
    value & flag
    & info [ "dump-requests" ]
        ~doc:
          "Instead of compiling, print each manifest entry as a serve-protocol \
           compile request line on stdout — pipe into $(b,wsc serve).")

let batch_cmd =
  let run manifest domains capacity timeout repeat json_out dump trace_path
      tuned_path =
    let paths = Serve.Batch.manifest_paths manifest in
    if dump then begin
      Serve.Batch.dump_requests stdout paths;
      Ok ()
    end
    else begin
      match load_tuned tuned_path with
      | Error _ as e -> e
      | Ok tuned ->
      Serve.Server.install_signal_handlers ();
      let cfg =
        {
          Serve.Batch.domains;
          capacity;
          timeout_s = timeout;
          options = pipeline_options;
          repeat;
          trace_path;
          tuned;
        }
      in
      let r = Serve.Batch.run cfg paths in
      let s = r.Serve.Batch.rp_cache in
      Printf.printf
        "batch: %d file(s), %d ok, %d error(s), %d cancelled in %.2f s\n"
        r.Serve.Batch.rp_total r.Serve.Batch.rp_ok r.Serve.Batch.rp_errors
        r.Serve.Batch.rp_cancelled r.Serve.Batch.rp_wall_s;
      Printf.printf
        "  cache: %d hit / %d miss / %d evicted (hit-rate %.1f%%, %d/%d \
         entries)\n"
        s.Serve.Cache.hits s.Serve.Cache.misses s.Serve.Cache.evictions
        (100.0 *. Serve.Cache.hit_rate s)
        s.Serve.Cache.entries s.Serve.Cache.capacity;
      if tuned <> None then
        Printf.printf "  tuned: %d hit / %d miss\n" r.Serve.Batch.rp_tuned_hits
          r.Serve.Batch.rp_tuned_misses;
      List.iter
        (fun (e : Serve.Batch.entry) ->
          if e.Serve.Batch.en_status <> "ok" then
            Printf.printf "  %s (round %d): %s%s\n" e.Serve.Batch.en_path
              e.Serve.Batch.en_round e.Serve.Batch.en_status
              (match e.Serve.Batch.en_message with
              | Some m -> ": " ^ m
              | None -> ""))
        r.Serve.Batch.rp_entries;
      (match json_out with
      | Some path -> write_json path (Serve.Batch.report_to_json cfg r)
      | None -> ());
      if r.Serve.Batch.rp_errors > 0 then exit 1;
      Ok ()
    end
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Compile every file in a manifest through the serve engine \
          (persistent worker pool + compile cache) and report per-file \
          outcomes; $(b,--repeat) demonstrates cache hits, \
          $(b,--dump-requests) renders the manifest as serve protocol lines.")
    Term.(
      term_result
        (const run $ manifest_arg $ serve_domains_arg $ cache_capacity_arg
       $ serve_timeout_arg $ repeat_arg $ batch_json_arg $ dump_requests_arg
       $ serve_trace_arg $ tuned_cache_arg))

(* ---------------- tune ---------------- *)

let tune_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Search seed; reruns with the same seed replay byte-for-byte.")

let tune_screen_arg =
  Arg.(
    value & opt int Wsc_tune.Tune.default_config.Wsc_tune.Tune.screen
    & info [ "screen" ] ~docv:"N"
        ~doc:"Candidates entering predictor screening.")

let tune_top_arg =
  Arg.(
    value & opt int Wsc_tune.Tune.default_config.Wsc_tune.Tune.top_k
    & info [ "top" ] ~docv:"K"
        ~doc:"Screened candidates confirmed by fabric simulation.")

let tune_extent_arg =
  Arg.(
    value & opt int Wsc_tune.Tune.default_config.Wsc_tune.Tune.extent
    & info [ "extent" ] ~docv:"N" ~doc:"Proxy-grid PE extent per side.")

let tune_domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Worker domains for candidate fan-out.")

let tune_no_oracle_arg =
  Arg.(
    value & flag
    & info [ "no-oracle" ]
        ~doc:
          "Skip the differential-oracle gate (the winner is then reported \
           but can never be saved — tuned configs do not ship without an \
           oracle pass).")

let tune_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write the report as JSON.")

let tune_save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"FILE"
        ~doc:
          "Register the oracle-validated winner into the tuned-config store \
           at FILE (created, or loaded and extended), for $(b,wsc serve) / \
           $(b,wsc batch) $(b,--tuned-cache).")

let tune_cmd =
  let run bench machine seed screen top extent domains no_oracle json_out
      save_path =
    match bench with
    | None -> Error (`Msg "tune: --bench required")
    | Some id -> (
        match B.find id with
        | exception Invalid_argument msg -> Error (`Msg msg)
        | d ->
            let module T = Wsc_tune.Tune in
            let config =
              {
                T.seed;
                screen;
                top_k = top;
                extent;
                domains;
                machine;
                oracle = not no_oracle;
              }
            in
            let r = T.run ~config d in
            Printf.printf
              "tune %s on %s: space %d, screened %d, confirmed %d\n" r.T.r_bench
              r.T.r_machine r.T.r_space_size r.T.r_screened r.T.r_confirmed;
            Printf.printf
              "  proxy evals: %d requested, %d simulated, %d saved by memo\n"
              r.T.r_evals_total r.T.r_evals_run r.T.r_evals_saved;
            Printf.printf "  default: %.1f cycles/iter\n" r.T.r_default_cycles;
            Printf.printf "  tuned:   %.1f cycles/iter (%+.1f%%)\n"
              r.T.r_tuned_cycles r.T.r_improvement_pct;
            Printf.printf "  config:  %s\n"
              (Wsc_core.Pipeline.options_to_string r.T.r_tuned_options);
            (match r.T.r_oracle_ok with
            | Some true ->
                Printf.printf "  oracle:  PASS (%d check(s))\n" r.T.r_oracle_checks
            | Some false ->
                Printf.printf "  oracle:  FAIL (%d check(s)%s)\n"
                  r.T.r_oracle_checks
                  (match r.T.r_oracle_failure with
                  | Some m -> ": " ^ m
                  | None -> "")
            | None -> Printf.printf "  oracle:  skipped\n");
            (match json_out with
            | Some path -> write_json path (T.to_json r)
            | None -> ());
            (match save_path with
            | None -> ()
            | Some path ->
                let store =
                  if Sys.file_exists path then
                    match Serve.Tuned.load_file path with
                    | Ok s -> s
                    | Error msg -> failwith ("--save: " ^ msg)
                  else Serve.Tuned.create ()
                in
                if T.register store r then begin
                  Serve.Tuned.save_file store path;
                  Printf.printf "saved tuned config to %s (%d entr%s)\n" path
                    (Serve.Tuned.size store)
                    (if Serve.Tuned.size store = 1 then "y" else "ies")
                end
                else
                  Printf.printf
                    "not saved: winner lacks an oracle pass or beats nothing\n");
            if r.T.r_oracle_ok = Some false then exit 1;
            if r.T.r_tuned_cycles > r.T.r_default_cycles then exit 1;
            Ok ())
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Search the pipeline-option space for a benchmark (predictor \
          screening, then fabric-simulation confirmation, then the \
          differential-oracle gate) and report the tuned config; \
          $(b,--save) ships validated winners into a tuned-config store \
          that $(b,wsc serve) / $(b,wsc batch) consult.")
    Term.(
      term_result
        (const run $ bench_arg $ machine_arg $ tune_seed_arg $ tune_screen_arg
       $ tune_top_arg $ tune_extent_arg $ tune_domains_arg $ tune_no_oracle_arg
       $ tune_json_arg $ tune_save_arg))

(* ---------------- perf ---------------- *)

let perf_cmd =
  let run bench size machine =
    match bench with
    | None -> Error (`Msg "perf: --bench required")
    | Some id -> (
        match B.find id with
        | exception Invalid_argument msg -> Error (`Msg msg)
        | d ->
            let r = Wsc_perf.Wse_perf.measure ~machine ~size d in
            Format.printf "%a@." Wsc_perf.Wse_perf.pp_measurement r;
            Ok ())
  in
  Cmd.v
    (Cmd.info "perf" ~doc:"Report simulated throughput.")
    Term.(term_result (const run $ bench_arg $ size_arg $ machine_arg))

(* ---------------- ir ---------------- *)

let stage_arg =
  Arg.(
    value & opt string "csl"
    & info [ "stage" ] ~docv:"STAGE"
        ~doc:"Pipeline stage to print: stencil, distributed, prefetch, \
              csl-stencil, bufferized, csl.")

let ir_cmd =
  let run bench input size iterations stage =
    let* _, m = program_of ~bench ~input ~size ~iterations in
    Wsc_core.Csl_stencil_interp.register ();
    let o = pipeline_options in
    let* passes =
      match stage with
      | "stencil" -> Ok []
      | "distributed" -> Ok (Wsc_core.Pipeline.frontend_passes o)
      | "prefetch" ->
          Ok
            (Wsc_core.Pipeline.frontend_passes o
            @ [ List.hd (Wsc_core.Pipeline.middle_passes o) ])
      | "csl-stencil" ->
          Ok
            (Wsc_core.Pipeline.frontend_passes o
            @ (Wsc_core.Pipeline.middle_passes o |> List.filteri (fun i _ -> i < 2))
            )
      | "bufferized" ->
          Ok (Wsc_core.Pipeline.frontend_passes o @ Wsc_core.Pipeline.middle_passes o)
      | "csl" -> Ok (Wsc_core.Pipeline.passes o)
      | s -> Error (`Msg ("unknown stage " ^ s))
    in
    let m = Wsc_ir.Pass.run_pipeline passes m in
    Wsc_ir.Printer.print_op m;
    Ok ()
  in
  Cmd.v
    (Cmd.info "ir" ~doc:"Print the IR after a pipeline stage.")
    Term.(
      term_result
        (const run $ bench_arg $ input_arg $ size_arg $ iters_arg $ stage_arg))

(* ---------------- multiwafer ---------------- *)

let wafers_conv =
  let parse s =
    match String.split_on_char 'x' s with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some wx, Some wy when wx >= 1 && wy >= 1 -> Ok (wx, wy)
        | _ -> Error (`Msg (Printf.sprintf "bad wafer grid '%s': expected WxH" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad wafer grid '%s': expected WxH" s))
  in
  Arg.conv (parse, fun fmt (w, h) -> Format.fprintf fmt "%dx%d" w h)

let wafers_arg =
  Arg.(
    value & opt wafers_conv (2, 1)
    & info [ "w"; "wafers" ] ~docv:"WxH"
        ~doc:"Wafer grid to decompose over (e.g. 2x1, 2x2).")

let mw_latency_arg =
  Arg.(
    value
    & opt float Wsc_multiwafer.Interconnect.default.latency_s
    & info [ "latency" ] ~docv:"S"
        ~doc:"Modeled inter-wafer interconnect latency, seconds per epoch.")

let mw_bandwidth_arg =
  Arg.(
    value
    & opt float Wsc_multiwafer.Interconnect.default.bandwidth_bytes_per_s
    & info [ "bandwidth" ] ~docv:"B/S"
        ~doc:"Modeled inter-wafer interconnect bandwidth, bytes per second.")

let mw_no_check_arg =
  Arg.(
    value & flag
    & info [ "no-check" ]
        ~doc:
          "Skip the bit-identity check against the undecomposed \
           single-wafer simulation.")

let mw_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable summary (plan, per-epoch cycles, \
           interconnect charge, compile-cache counters, bit-identity).")

let mw_faults_arg =
  Arg.(
    value & flag
    & info [ "faults" ]
        ~doc:
          "Run a wafer-level fault campaign (model × rate × seed sweep) \
           instead of a single co-simulation: inter-wafer halo drops and \
           corruption, wafer crashes and losses, interconnect latency \
           spikes — with checkpoint/rollback recovery unless \
           $(b,--no-resilience).")

let wafer_kind_conv =
  let module Wf = Wsc_faults.Faults.Wafer in
  let parse s =
    match
      List.find_opt (fun k -> Wf.kind_to_string k = s) Wf.all_kinds
    with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown wafer fault kind '%s': accepted kinds are %s" s
               (String.concat ", " (List.map Wf.kind_to_string Wf.all_kinds))))
  in
  Arg.conv
    (parse, fun fmt k -> Format.pp_print_string fmt (Wf.kind_to_string k))

let wafer_kinds_arg =
  Arg.(
    value
    & opt (list wafer_kind_conv) Wsc_faults.Faults.Wafer.all_kinds
    & info [ "wafer-kinds" ] ~docv:"KINDS"
        ~doc:
          "Comma-separated wafer fault models to sweep: halo-drop, \
           halo-corrupt, crash, loss, spike (default: all).")

let mw_cadence_arg =
  Arg.(
    value
    & opt int Wsc_faults.Faults.Wafer.default_resilience.checkpoint_cadence
    & info [ "cadence" ] ~docv:"EPOCHS"
        ~doc:"Checkpoint cadence in epochs (resilient campaigns).")

let mw_max_retries_arg =
  Arg.(
    value
    & opt int Wsc_faults.Faults.Wafer.default_resilience.max_retries
    & info [ "max-retries" ] ~docv:"N"
        ~doc:
          "Retry budget per epoch before a faulty wafer is declared dead \
           and the run degrades.")

let multiwafer_cmd =
  let module MW = Wsc_multiwafer.Cosim in
  let module MC = Wsc_multiwafer.Mwcampaign in
  let module Wf = Wsc_faults.Faults.Wafer in
  let module D = Wsc_multiwafer.Decompose in
  let module IC = Wsc_multiwafer.Interconnect in
  let module J = Wsc_trace.Json in
  let run_campaign ~bench:id ~size ~iterations ~machine ~wafers ~kinds ~rates
      ~seeds ~resilient ~cadence ~max_retries ~json_out =
    let resilience =
      { Wf.checkpoint_cadence = cadence; max_retries }
    in
    let report =
      MC.run ~machine ?iterations ~kinds ~resilience ~bench:id ~size ~wafers
        ~resilient ~rates ~seeds ()
    in
    print_string (MC.to_string report);
    (match json_out with
    | None -> ()
    | Some path -> write_json path (MC.to_json report));
    (* recovery must be exact: with the protocol on, any completed,
       non-degraded cell that is not bit-identical is a bug *)
    let broken (c : MC.cell) =
      resilient
      && ((c.MC.completed && (not c.MC.degraded) && not c.MC.bit_identical)
          || c.MC.error <> None)
    in
    if List.exists broken report.MC.cells then exit 1;
    Ok ()
  in
  let run bench size iterations machine wafers latency bandwidth no_check
      json_out faults_mode wafer_kinds rates seeds no_resilience cadence
      max_retries =
    let* id =
      match bench with
      | None -> Error (`Msg "multiwafer: choose a benchmark with --bench NAME")
      | Some id -> (
          match B.find id with
          | exception Invalid_argument msg -> Error (`Msg msg)
          | _ -> Ok id)
    in
    if faults_mode then
      run_campaign ~bench:id ~size ~iterations ~machine ~wafers
        ~kinds:wafer_kinds ~rates ~seeds ~resilient:(not no_resilience)
        ~cadence ~max_retries ~json_out
    else begin
    let p =
      let d = B.find id in
      match iterations with Some n -> d.make_n size n | None -> d.make size
    in
    let interconnect =
      { IC.latency_s = latency; bandwidth_bytes_per_s = bandwidth }
    in
    let r = MW.run ~interconnect ~machine ~wafers p in
    let wx, wy = wafers in
    let nx, ny, nz = p.P.extents in
    Printf.printf
      "multiwafer %s: %dx%dx%d interior over %dx%d wafers (%d slice \
       shape(s)), %d epoch(s)\n"
      p.P.pname nx ny nz wx wy r.MW.distinct_programs r.MW.epochs;
    List.iter
      (fun (s : D.slice) ->
        Printf.printf
          "  wafer (%d,%d): origin (%d,%d) extent %dx%d, %d swap(s), %d \
           halo scalar(s)/epoch\n"
          s.D.wi s.D.wj s.D.x0 s.D.y0 s.D.snx s.D.sny (List.length s.D.swaps)
          (D.slice_exchange_scalars s))
      r.MW.plan.D.slices;
    let cs = r.MW.cache in
    Printf.printf
      "  device %.0f cycles; interconnect %.3e s for %d byte(s); compile \
       cache %d hit (%d dedup) / %d miss\n"
      r.MW.device_cycles r.MW.interconnect_s r.MW.exchange_bytes
      cs.Wsc_serve.Cache.hits cs.Wsc_serve.Cache.dedup_hits
      cs.Wsc_serve.Cache.misses;
    let identical =
      if no_check then None
      else begin
        let refs = MW.reference ~machine p in
        let ok = MW.grids_bit_identical refs r.MW.grids in
        Printf.printf "  vs single wafer: %s\n"
          (if ok then "BIT-IDENTICAL" else "MISMATCH");
        Some ok
      end
    in
    (match json_out with
    | None -> ()
    | Some path ->
        write_json path
          (J.summary ~tool:"multiwafer"
             ~config:
               [
                 ("bench", J.String p.P.pname);
                 ("machine", J.String machine.name);
                 ("size", J.String (B.size_to_string size));
                 ("wafers", J.String (Printf.sprintf "%dx%d" wx wy));
                 ("extents", J.List [ J.Int nx; J.Int ny; J.Int nz ]);
                 ("latency_s", J.Float latency);
                 ("bandwidth_bytes_per_s", J.Float bandwidth);
               ]
             ~results:
               [
                 J.Obj
                   [
                     ("epochs", J.Int r.MW.epochs);
                     ("distinct_programs", J.Int r.MW.distinct_programs);
                     ("device_cycles", J.Float r.MW.device_cycles);
                     ("interconnect_s", J.Float r.MW.interconnect_s);
                     ("exchange_bytes", J.Int r.MW.exchange_bytes);
                     ("cache_hits", J.Int cs.Wsc_serve.Cache.hits);
                     ("cache_dedup_hits", J.Int cs.Wsc_serve.Cache.dedup_hits);
                     ("cache_misses", J.Int cs.Wsc_serve.Cache.misses);
                     ("wall_s", J.Float r.MW.wall_s);
                     ( "bit_identical",
                       match identical with
                       | None -> J.Null
                       | Some b -> J.Bool b );
                   ];
               ]));
    if identical = Some false then exit 1;
    Ok ()
    end
  in
  Cmd.v
    (Cmd.info "multiwafer"
       ~doc:
         "Decompose a benchmark across N simulated wafers, co-simulate one \
          wafer per domain, and check bit-identity vs a single wafer; with \
          $(b,--faults), sweep wafer-level fault campaigns with \
          checkpoint/rollback recovery.")
    Term.(
      term_result
        (const run $ bench_arg $ size_arg $ iters_arg $ machine_arg
       $ wafers_arg $ mw_latency_arg $ mw_bandwidth_arg $ mw_no_check_arg
       $ mw_json_arg $ mw_faults_arg $ wafer_kinds_arg $ rates_arg
       $ seeds_arg $ no_resilience_arg $ mw_cadence_arg $ mw_max_retries_arg))

let () =
  let info =
    Cmd.info "wsc" ~version:"1.0.0"
      ~doc:"An MLIR-style lowering pipeline for stencils at wafer scale."
  in
  let rc =
    try
      Cmd.eval ~catch:false
        (Cmd.group info
           [
             compile_cmd;
             simulate_cmd;
             trace_cmd;
             faults_cmd;
             fuzz_cmd;
             reduce_cmd;
             serve_cmd;
             batch_cmd;
             tune_cmd;
             multiwafer_cmd;
             perf_cmd;
             ir_cmd;
           ])
    with
    | Wsc_wse.Fabric.Sim_error msg
    | Wsc_wse.Host.Host_error msg
    | Wsc_core.To_csl_stencil.Lowering_error msg
    | Wsc_core.To_actors.Actor_error msg
    | Wsc_multiwafer.Decompose.Decompose_error msg
    | Wsc_multiwafer.Cosim.Cosim_error msg ->
        prerr_endline ("wsc: " ^ msg);
        2
    | Wsc_ir.Parser.Parse_error (_, msg) ->
        (* msg already names the offending token's line/column *)
        prerr_endline ("wsc: parse error: " ^ msg);
        2
    | Wsc_ir.Pass.Pass_failed (pass, exn) ->
        prerr_endline
          (Printf.sprintf "wsc: pass %s failed: %s" pass (Printexc.to_string exn));
        2
  in
  exit rc
